package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
)

// Spec is a declarative, multi-tenant workload description: one or more
// clients, each with an arrival process, resource distributions, a relative
// rate fraction, and a service class. Specs are strict JSON (unknown fields
// are rejected) and compile into the Model generator machinery, so
// everything downstream of Sample/Stream — ClampTasks, TaskSource, the
// simulator — consumes spec-driven traffic unchanged. The ten builtin
// datasets ship as preset specs (see PresetSpec) that reproduce their
// legacy models bit-identically.
type Spec struct {
	Name    string       `json:"name"`
	Clients []SpecClient `json:"clients"`
}

// SpecClient describes one tenant of a Spec.
type SpecClient struct {
	// ID names the client in errors and reports. Required, unique.
	ID string `json:"id"`
	// Dataset optionally labels sampled tasks with a builtin dataset's
	// Source ID (by trace name, e.g. "Google"). When absent, tasks carry a
	// synthetic Source beyond the builtin range, one per client.
	Dataset string `json:"dataset,omitempty"`
	// RateFraction is the client's share of the sampled tasks, relative to
	// the sum over all clients. Required, positive.
	RateFraction float64 `json:"rate_fraction"`
	// SLOClass is "best-effort" (the default), "standard" or "critical".
	SLOClass string `json:"slo_class,omitempty"`

	Arrival  ArrivalSpec `json:"arrival"`
	CPU      CPUSpec     `json:"cpu"`
	Memory   MemSpec     `json:"memory"`
	Duration DurSpec     `json:"duration"`
}

// ArrivalSpec selects and parameterizes a client's arrival process.
type ArrivalSpec struct {
	// Process is "burst" (the default), "poisson", "gamma-burst" or
	// "weibull"; see ArrivalKind for the semantics.
	Process     string  `json:"process,omitempty"`
	RatePerSlot float64 `json:"rate_per_slot"`
	DiurnalAmp  float64 `json:"diurnal_amp,omitempty"`
	// DiurnalPeriod defaults to 144 slots, the builtin models' day length.
	DiurnalPeriod int     `json:"diurnal_period,omitempty"`
	Burstiness    float64 `json:"burstiness,omitempty"`
	GapShape      float64 `json:"gap_shape,omitempty"`
}

// CPUSpec is the weighted-discrete vCPU request distribution.
type CPUSpec struct {
	Choices []int     `json:"choices"`
	Weights []float64 `json:"weights"`
}

// MemSpec is the memory request distribution in GiB.
type MemSpec struct {
	// Dist is "lognormal-per-cpu" (the default) or "quantile".
	Dist      string    `json:"dist,omitempty"`
	PerCPU    float64   `json:"per_cpu,omitempty"`
	Spread    float64   `json:"spread,omitempty"`
	Quantiles []float64 `json:"quantiles,omitempty"`
	Min       float64   `json:"min"`
	Max       float64   `json:"max"`
}

// DurSpec is the execution time distribution in slots.
type DurSpec struct {
	// Dist is "lognormal" (the default) or "quantile".
	Dist      string    `json:"dist,omitempty"`
	Median    float64   `json:"median,omitempty"`
	Sigma     float64   `json:"sigma,omitempty"`
	Quantiles []float64 `json:"quantiles,omitempty"`
	Min       int       `json:"min"`
	Max       int       `json:"max"`
}

// ParseSpec decodes a strict-JSON spec: unknown fields and trailing content
// are rejected so typos fail loudly instead of silently defaulting.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: parse spec: trailing data after spec object")
	}
	return &s, nil
}

// LoadSpec reads, parses, and validates a spec file. Errors carry
// file:client:field context.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("workload: spec %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec without building a generator.
func (s *Spec) Validate() error {
	_, err := s.Compile()
	return err
}

// CompiledClient is one tenant's compiled generator.
type CompiledClient struct {
	ID       string
	Fraction float64
	Model    *Model
}

// Compiled is a spec lowered onto the Model machinery, ready to sample.
type Compiled struct {
	Name    string
	Clients []CompiledClient
}

// Compile lowers the spec onto Models, validating every field. Errors name
// the client index, ID, and offending field.
func (s *Spec) Compile() (*Compiled, error) {
	if len(s.Clients) == 0 {
		return nil, fmt.Errorf("workload: spec %q: no clients", s.Name)
	}
	c := &Compiled{Name: s.Name}
	seen := make(map[string]bool, len(s.Clients))
	for i := range s.Clients {
		cl := &s.Clients[i]
		if cl.ID == "" {
			return nil, fmt.Errorf("workload: spec %q: client %d: id: must not be empty", s.Name, i)
		}
		if seen[cl.ID] {
			return nil, fmt.Errorf("workload: spec %q: client %d: id: duplicate %q", s.Name, i, cl.ID)
		}
		seen[cl.ID] = true
		m, err := cl.compile(i)
		if err != nil {
			return nil, fmt.Errorf("workload: spec %q: client %d (%q): %w", s.Name, i, cl.ID, err)
		}
		c.Clients = append(c.Clients, CompiledClient{ID: cl.ID, Fraction: cl.RateFraction, Model: m})
	}
	return c, nil
}

// ParseDatasetName resolves a builtin dataset's trace name (e.g. "Google",
// "KVM-2019"), case-insensitively.
func ParseDatasetName(name string) (DatasetID, error) {
	for _, id := range AllDatasets() {
		if strings.EqualFold(name, id.String()) {
			return id, nil
		}
	}
	return 0, fmt.Errorf("unknown dataset %q", name)
}

func (cl *SpecClient) compile(index int) (*Model, error) {
	m := &Model{Name: cl.ID}
	if cl.Dataset != "" {
		id, err := ParseDatasetName(cl.Dataset)
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		m.ID = id
	} else {
		// Synthetic Source beyond the builtin range, one per client, so
		// mixed-tenant sets stay attributable.
		m.ID = DatasetID(NumDatasets + index)
	}
	if !(cl.RateFraction > 0) || math.IsInf(cl.RateFraction, 0) {
		return nil, fmt.Errorf("rate_fraction: must be positive and finite (got %v)", cl.RateFraction)
	}
	slo, err := ParseSLOClass(cl.SLOClass)
	if err != nil {
		return nil, fmt.Errorf("slo_class: %w", err)
	}
	m.SLO = slo

	switch cl.Arrival.Process {
	case "", "burst":
		m.Arrival = ArrivalBurst
	case "poisson":
		m.Arrival = ArrivalPoisson
	case "gamma-burst":
		m.Arrival = ArrivalGammaBurst
	case "weibull":
		m.Arrival = ArrivalWeibull
	default:
		return nil, fmt.Errorf("arrival.process: unknown %q (want burst, poisson, gamma-burst or weibull)", cl.Arrival.Process)
	}
	m.RatePerSlot = cl.Arrival.RatePerSlot
	m.DiurnalAmp = cl.Arrival.DiurnalAmp
	m.DiurnalPeriod = cl.Arrival.DiurnalPeriod
	if m.DiurnalPeriod == 0 {
		m.DiurnalPeriod = 144
	}
	m.Burstiness = cl.Arrival.Burstiness
	m.GapShape = cl.Arrival.GapShape

	m.CPUChoices = append([]int(nil), cl.CPU.Choices...)
	m.CPUWeights = append([]float64(nil), cl.CPU.Weights...)

	switch cl.Memory.Dist {
	case "", "lognormal-per-cpu":
		m.MemDist = DistLogNormal
		m.MemPerCPU = cl.Memory.PerCPU
		m.MemSpread = cl.Memory.Spread
	case "quantile":
		m.MemDist = DistQuantile
		m.MemQuantiles = append([]float64(nil), cl.Memory.Quantiles...)
	default:
		return nil, fmt.Errorf("memory.dist: unknown %q (want lognormal-per-cpu or quantile)", cl.Memory.Dist)
	}
	m.MemMin = cl.Memory.Min
	m.MemMax = cl.Memory.Max

	switch cl.Duration.Dist {
	case "", "lognormal":
		m.DurDist = DistLogNormal
		if !(cl.Duration.Median > 0) || math.IsInf(cl.Duration.Median, 0) {
			return nil, fmt.Errorf("duration.median: must be positive and finite (got %v)", cl.Duration.Median)
		}
		m.DurMu = math.Log(cl.Duration.Median)
		m.DurSigma = cl.Duration.Sigma
	case "quantile":
		m.DurDist = DistQuantile
		m.DurQuantiles = append([]float64(nil), cl.Duration.Quantiles...)
	default:
		return nil, fmt.Errorf("duration.dist: unknown %q (want lognormal or quantile)", cl.Duration.Dist)
	}
	m.DurMin = cl.Duration.Min
	m.DurMax = cl.Duration.Max

	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// counts splits n tasks across clients proportionally to rate fractions,
// with cumulative rounding so the shares always sum to exactly n.
func (c *Compiled) counts(n int) []int {
	sum := 0.0
	for _, cl := range c.Clients {
		sum += cl.Fraction
	}
	counts := make([]int, len(c.Clients))
	acc, assigned := 0.0, 0
	for i, cl := range c.Clients {
		acc += cl.Fraction / sum
		k := int(math.Round(acc * float64(n)))
		if i == len(c.Clients)-1 {
			k = n
		}
		counts[i] = k - assigned
		assigned = k
	}
	return counts
}

// Sample draws n tasks from the compiled spec. A single-client spec
// delegates directly to its model with the caller's RNG — this is what
// makes the shipped presets reproduce the builtin generators bit-for-bit.
// Multi-client specs seed one child RNG per client from the caller's RNG
// (in client order), sample each client's share, and Combine the sets:
// arrival-ordered with ties in client order, rebased, IDs renumbered.
func (c *Compiled) Sample(rng *rand.Rand, n int) []Task {
	if len(c.Clients) == 1 {
		return c.Clients[0].Model.Sample(rng, n)
	}
	counts := c.counts(n)
	sets := make([][]Task, len(c.Clients))
	for i, cl := range c.Clients {
		crng := rand.New(rand.NewSource(rng.Int63()))
		sets[i] = cl.Model.Sample(crng, counts[i])
	}
	return Combine(sets...)
}

// TaskStream is a lazy generator over a finite task sequence. *Stream
// implements it, as do compiled multi-client specs.
type TaskStream interface {
	// Next emits the next task, or false once the sequence is exhausted.
	Next() (Task, bool)
	// Remaining reports how many tasks the stream will still emit.
	Remaining() int
}

// Stream returns a lazy generator over n tasks that emits exactly the
// sequence Sample returns (pinned by TestSpecStreamMatchesSample): the
// per-client streams are merged by (arrival, client order) — the same
// ordering Combine's stable sort produces — with arrivals rebased against
// the earliest first peek and IDs renumbered on emission.
func (c *Compiled) Stream(rng *rand.Rand, n int) TaskStream {
	if len(c.Clients) == 1 {
		return c.Clients[0].Model.Stream(rng, n)
	}
	counts := c.counts(n)
	ss := &specStream{
		streams: make([]*Stream, len(c.Clients)),
		peek:    make([]Task, len(c.Clients)),
		has:     make([]bool, len(c.Clients)),
		total:   n,
	}
	for i, cl := range c.Clients {
		crng := rand.New(rand.NewSource(rng.Int63()))
		ss.streams[i] = cl.Model.Stream(crng, counts[i])
	}
	return ss
}

// specStream k-way-merges per-client Streams by (arrival, client index).
type specStream struct {
	streams []*Stream
	peek    []Task
	has     []bool
	base    int
	primed  bool

	produced int
	total    int
}

func (s *specStream) prime() {
	base := math.MaxInt
	for i, st := range s.streams {
		s.peek[i], s.has[i] = st.Next()
		if s.has[i] && s.peek[i].Arrival < base {
			base = s.peek[i].Arrival
		}
	}
	if base == math.MaxInt {
		base = 0
	}
	s.base = base
	s.primed = true
}

// Next emits the next merged task. Arrivals are non-decreasing: each client
// stream is non-decreasing and the merge always takes the global minimum.
func (s *specStream) Next() (Task, bool) {
	if !s.primed {
		s.prime()
	}
	best := -1
	for i := range s.streams {
		if s.has[i] && (best < 0 || s.peek[i].Arrival < s.peek[best].Arrival) {
			best = i
		}
	}
	if best < 0 {
		return Task{}, false
	}
	t := s.peek[best]
	s.peek[best], s.has[best] = s.streams[best].Next()
	t.Arrival -= s.base
	t.ID = s.produced
	s.produced++
	return t, true
}

func (s *specStream) Remaining() int { return s.total - s.produced }
