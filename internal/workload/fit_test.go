package workload

import (
	"math/rand"
	"testing"
)

// TestFitSpecRoundTrip fits a spec to a sampled trace and checks the fit
// compiles, samples, and lands near the trace's marginals: the calibration
// report's KS distances must be small for the resource dimensions.
func TestFitSpecRoundTrip(t *testing.T) {
	trace := SampleDataset(KVM2020, rand.New(rand.NewSource(11)), 2000)
	spec, err := FitSpec("kvm-replay", trace)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := spec.Compile()
	if err != nil {
		t.Fatalf("fitted spec does not compile: %v", err)
	}
	sampled := comp.Sample(rand.New(rand.NewSource(12)), len(trace))
	if len(sampled) != len(trace) {
		t.Fatalf("sampled %d tasks, want %d", len(sampled), len(trace))
	}
	for _, tk := range sampled {
		if tk.SLO != SLOStandard {
			t.Fatalf("fitted spec lost the majority SLO class: task %+v", tk)
		}
	}
	rep := Calibrate(trace, sampled)
	if rep.TraceTasks != 2000 || rep.SampledTasks != 2000 {
		t.Fatalf("report counts = %d/%d", rep.TraceTasks, rep.SampledTasks)
	}
	for _, dim := range rep.Dims {
		if len(dim.TraceQ) != len(CalibrationQuantiles) || len(dim.SampledQ) != len(CalibrationQuantiles) {
			t.Fatalf("%s: quantile rows malformed: %+v", dim.Name, dim)
		}
		// The arrival process is only moment-matched, so just require the
		// resource marginals (fitted as empirical quantiles) to be close.
		if dim.Name != "interarrival" && dim.KS > 0.05 {
			t.Errorf("%s: KS distance %.3f > 0.05", dim.Name, dim.KS)
		}
	}
}

// TestCalibrateIdentity checks the KS distance of a trace against itself
// is zero on every dimension.
func TestCalibrateIdentity(t *testing.T) {
	trace := SampleDataset(Google, rand.New(rand.NewSource(4)), 500)
	rep := Calibrate(trace, trace)
	for _, dim := range rep.Dims {
		if dim.KS != 0 {
			t.Fatalf("%s: self-KS = %v, want 0", dim.Name, dim.KS)
		}
	}
}

// TestFitSpecEmptyTrace checks the error path.
func TestFitSpecEmptyTrace(t *testing.T) {
	if _, err := FitSpec("empty", nil); err == nil {
		t.Fatal("no error for empty trace")
	}
}
