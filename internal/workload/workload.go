// Package workload models the ten cloud workload datasets the paper samples
// tasks from (Google 2011, Alibaba-2017/2018, three HPC centers, two
// Chameleon KVM clouds, CERIT-SC and its Kubernetes cluster).
//
// The real traces are not redistributable, and the paper itself does not
// replay them: it "considers the workload datasets as distributions and
// samples 3500 tasks for each client" (§5.1). We therefore model each
// dataset as a parameterized joint distribution over
//
//	(requested vCPUs, requested memory, execution time, inter-arrival gap)
//
// whose qualitative shapes follow what the paper reports in Figures 2–5 and
// Table 1: Google is dominated by tiny, short, bursty tasks; the HPC centers
// submit few, large, long jobs; the KVM education clouds sit in between with
// diurnal arrivals; the Kubernetes cluster runs small containers with
// heavy-tailed runtimes. The load-bearing property — strong heterogeneity
// across clients in all four marginals — is preserved by construction.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Task is one schedulable unit of work sampled from a dataset.
type Task struct {
	ID       int     // unique within the sampled set
	Arrival  int     // arrival time slot (non-decreasing within a set)
	CPU      int     // requested vCPUs
	Mem      float64 // requested memory in GiB
	Duration int     // execution time in slots on any VM that fits it
	Source   DatasetID
	SLO      SLOClass // service tier (zero value: best-effort)
}

// DatasetID identifies one of the ten modelled workload datasets.
type DatasetID int

// The ten datasets used across the paper's experiments (§3, §5.1).
const (
	Google DatasetID = iota
	Alibaba2017
	Alibaba2018
	HPCKS
	HPCHF
	HPCWZ
	KVM2019
	KVM2020
	CERITSC
	K8S
	numDatasets
)

// NumDatasets is the number of modelled datasets.
const NumDatasets = int(numDatasets)

// String returns the dataset's trace name.
func (d DatasetID) String() string {
	names := [...]string{
		"Google", "Alibaba-2017", "Alibaba-2018", "HPC-KS", "HPC-HF",
		"HPC-WZ", "KVM-2019", "KVM-2020", "CERIT-SC", "K8S",
	}
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("DatasetID(%d)", int(d))
	}
	return names[d]
}

// AllDatasets returns the ten dataset IDs in canonical order.
func AllDatasets() []DatasetID {
	out := make([]DatasetID, NumDatasets)
	for i := range out {
		out[i] = DatasetID(i)
	}
	return out
}

// ArrivalKind selects a Model's arrival process. The zero value is the
// legacy bursty process, so models built before the spec engine behave
// exactly as they always did.
type ArrivalKind int

// The four supported arrival processes.
const (
	// ArrivalBurst is the legacy process: at each slot a geometric batch
	// (mean 1/Burstiness) materializes with probability Burstiness·rate.
	ArrivalBurst ArrivalKind = iota
	// ArrivalPoisson draws an independent Poisson count of tasks per slot
	// at the diurnally modulated rate; Burstiness is unused.
	ArrivalPoisson
	// ArrivalGammaBurst separates geometric batches by gamma-distributed
	// gaps of shape GapShape and mean 1/(rate·Burstiness).
	ArrivalGammaBurst
	// ArrivalWeibull separates geometric batches by Weibull-distributed
	// gaps of shape GapShape and mean 1/(rate·Burstiness).
	ArrivalWeibull
	numArrivalKinds
)

// DistKind selects a marginal distribution family for memory or duration.
// The zero value keeps the legacy lognormal forms.
type DistKind int

// The supported distribution families.
const (
	// DistLogNormal is the legacy family: memory is lognormal around
	// CPU·MemPerCPU, duration is lognormal(DurMu, DurSigma).
	DistLogNormal DistKind = iota
	// DistQuantile samples by inverse-CDF over an empirical quantile grid
	// (MemQuantiles / DurQuantiles), linearly interpolated.
	DistQuantile
	numDistKinds
)

// Model is the generative model for one dataset. All fields are exported so
// experiments can construct ad-hoc variants (e.g. for ablations). The zero
// values of the spec-engine fields (Arrival, MemDist, DurDist, SLO,
// GapShape) reproduce the original generator bit-for-bit.
type Model struct {
	ID   DatasetID
	Name string

	// SLO is stamped onto every sampled task.
	SLO SLOClass

	// CPU request distribution: weighted discrete choices.
	CPUChoices []int
	CPUWeights []float64

	// Memory request in GiB. DistLogNormal: lognormal around
	// CPU·MemPerCPU with multiplicative spread MemSpread (sigma of the
	// underlying normal). DistQuantile: inverse-CDF over MemQuantiles.
	// Both are clamped to [MemMin, MemMax] and quantized to 0.25 GiB.
	MemDist      DistKind
	MemPerCPU    float64
	MemSpread    float64
	MemQuantiles []float64
	MemMin       float64
	MemMax       float64

	// Execution time in slots. DistLogNormal: lognormal(mu, sigma).
	// DistQuantile: inverse-CDF over DurQuantiles. Both truncated to
	// [DurMin, DurMax].
	DurDist      DistKind
	DurMu        float64
	DurSigma     float64
	DurQuantiles []float64
	DurMin       int
	DurMax       int

	// Arrival process: mean tasks per slot with sinusoidal diurnal
	// modulation of the given relative amplitude and period, plus
	// burstiness in (0,1]: lower values produce heavier clumping
	// (geometric batch sizes with mean 1/Burstiness). GapShape is the
	// gamma/weibull shape parameter of the gap-based processes.
	Arrival       ArrivalKind
	RatePerSlot   float64
	DiurnalAmp    float64
	DiurnalPeriod int
	Burstiness    float64
	GapShape      float64
}

// Validate checks internal consistency of the model parameters.
func (m *Model) Validate() error {
	for _, f := range []float64{m.MemPerCPU, m.MemSpread, m.MemMin, m.MemMax,
		m.DurMu, m.DurSigma, m.RatePerSlot, m.DiurnalAmp, m.Burstiness, m.GapShape} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("workload: %s: non-finite model parameter", m.Name)
		}
	}
	switch {
	case len(m.CPUChoices) == 0 || len(m.CPUChoices) != len(m.CPUWeights):
		return fmt.Errorf("workload: %s: CPU choices/weights mismatch", m.Name)
	case m.MemMin <= 0 || m.MemMax < m.MemMin:
		return fmt.Errorf("workload: %s: invalid memory parameters", m.Name)
	case m.DurMin < 1 || m.DurMax < m.DurMin:
		return fmt.Errorf("workload: %s: invalid duration bounds", m.Name)
	case m.RatePerSlot <= 0:
		return fmt.Errorf("workload: %s: non-positive arrival rate", m.Name)
	case m.DiurnalPeriod <= 0:
		return fmt.Errorf("workload: %s: diurnal period must be positive", m.Name)
	case m.SLO < 0 || int(m.SLO) >= NumSLOClasses:
		return fmt.Errorf("workload: %s: unknown SLO class %d", m.Name, int(m.SLO))
	}
	for _, c := range m.CPUChoices {
		if c < 1 {
			return fmt.Errorf("workload: %s: non-positive CPU choice %d", m.Name, c)
		}
	}
	total := 0.0
	for _, w := range m.CPUWeights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("workload: %s: invalid CPU weight %v", m.Name, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload: %s: zero total CPU weight", m.Name)
	}
	switch m.Arrival {
	case ArrivalPoisson:
		// Per-slot Poisson counts: Burstiness is unused.
	case ArrivalBurst, ArrivalGammaBurst, ArrivalWeibull:
		if m.Burstiness <= 0 || m.Burstiness > 1 {
			return fmt.Errorf("workload: %s: burstiness must be in (0,1]", m.Name)
		}
		if m.Arrival != ArrivalBurst && (m.GapShape < 0.01 || m.GapShape > 1000) {
			// The bounds keep the gamma/weibull mean-matching numerically
			// sound (Γ(1+1/k) overflows for tiny shapes).
			return fmt.Errorf("workload: %s: gap shape must be in [0.01, 1000]", m.Name)
		}
	default:
		return fmt.Errorf("workload: %s: unknown arrival process %d", m.Name, int(m.Arrival))
	}
	switch m.MemDist {
	case DistLogNormal:
		if m.MemPerCPU <= 0 {
			return fmt.Errorf("workload: %s: invalid memory parameters", m.Name)
		}
	case DistQuantile:
		if err := validateQuantiles(m.MemQuantiles); err != nil {
			return fmt.Errorf("workload: %s: memory quantiles: %w", m.Name, err)
		}
	default:
		return fmt.Errorf("workload: %s: unknown memory distribution %d", m.Name, int(m.MemDist))
	}
	switch m.DurDist {
	case DistLogNormal:
		// Any finite (mu, sigma) is usable; bounds clamp the tails.
	case DistQuantile:
		if err := validateQuantiles(m.DurQuantiles); err != nil {
			return fmt.Errorf("workload: %s: duration quantiles: %w", m.Name, err)
		}
	default:
		return fmt.Errorf("workload: %s: unknown duration distribution %d", m.Name, int(m.DurDist))
	}
	return nil
}

// validateQuantiles checks an empirical quantile grid for inverse-CDF
// sampling: at least two finite, non-negative, non-decreasing points.
func validateQuantiles(q []float64) error {
	if len(q) < 2 {
		return fmt.Errorf("need at least 2 points, got %d", len(q))
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("point %d is %v, want finite and non-negative", i, v)
		}
		if i > 0 && v < q[i-1] {
			return fmt.Errorf("points must be non-decreasing (point %d: %v < %v)", i, v, q[i-1])
		}
	}
	return nil
}

// sampleQuantile inverts an empirical CDF given as a quantile grid with
// evenly spaced probabilities, linearly interpolating between points.
func sampleQuantile(q []float64, u float64) float64 {
	pos := u * float64(len(q)-1)
	lo := int(pos)
	if lo >= len(q)-1 {
		return q[len(q)-1]
	}
	frac := pos - float64(lo)
	return q[lo] + frac*(q[lo+1]-q[lo])
}

// sampleMem draws a memory request; the lognormal family correlates it with
// the vCPU request.
func (m *Model) sampleMem(rng *rand.Rand, cpu int) float64 {
	var mem float64
	if m.MemDist == DistQuantile {
		mem = sampleQuantile(m.MemQuantiles, rng.Float64())
	} else {
		mem = float64(cpu) * m.MemPerCPU * math.Exp(m.MemSpread*rng.NormFloat64())
	}
	if mem < m.MemMin {
		mem = m.MemMin
	}
	if mem > m.MemMax {
		mem = m.MemMax
	}
	// Quantize to 0.25 GiB, matching trace-style requests.
	return math.Round(mem*4) / 4
}

// sampleDuration draws an execution time in slots.
func (m *Model) sampleDuration(rng *rand.Rand) int {
	var d int
	if m.DurDist == DistQuantile {
		d = int(math.Round(sampleQuantile(m.DurQuantiles, rng.Float64())))
	} else {
		d = int(math.Round(math.Exp(m.DurMu + m.DurSigma*rng.NormFloat64())))
	}
	if d < m.DurMin {
		d = m.DurMin
	}
	if d > m.DurMax {
		d = m.DurMax
	}
	return d
}

// Sample generates n tasks with non-decreasing arrival slots by draining a
// Stream, so both paths share one generator and consume the RNG in exactly
// the same order (pinned by TestStreamMatchesSample).
//
// Under the default ArrivalBurst process, arrivals are bursty and diurnally
// modulated: at each slot the expected batch count is
// RatePerSlot·(1 + DiurnalAmp·sin(2πt/period)); a batch materializes with
// probability Burstiness·rate (capped), and batch sizes are geometric with
// mean 1/Burstiness, so the marginal rate matches RatePerSlot while low
// Burstiness yields heavy clumping. See ArrivalKind for the alternatives.
func (m *Model) Sample(rng *rand.Rand, n int) []Task {
	s := m.Stream(rng, n)
	tasks := make([]Task, 0, n)
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		tasks = append(tasks, t)
	}
	return tasks
}

// Lookup returns the built-in model for a dataset ID.
func Lookup(id DatasetID) *Model {
	m, ok := builtinModels[id]
	if !ok {
		panic(fmt.Sprintf("workload: unknown dataset %v", id))
	}
	c := *m
	return &c
}

// SampleDataset is shorthand for Lookup(id).Sample(rng, n).
func SampleDataset(id DatasetID, rng *rand.Rand, n int) []Task {
	return Lookup(id).Sample(rng, n)
}
