// Package workload models the ten cloud workload datasets the paper samples
// tasks from (Google 2011, Alibaba-2017/2018, three HPC centers, two
// Chameleon KVM clouds, CERIT-SC and its Kubernetes cluster).
//
// The real traces are not redistributable, and the paper itself does not
// replay them: it "considers the workload datasets as distributions and
// samples 3500 tasks for each client" (§5.1). We therefore model each
// dataset as a parameterized joint distribution over
//
//	(requested vCPUs, requested memory, execution time, inter-arrival gap)
//
// whose qualitative shapes follow what the paper reports in Figures 2–5 and
// Table 1: Google is dominated by tiny, short, bursty tasks; the HPC centers
// submit few, large, long jobs; the KVM education clouds sit in between with
// diurnal arrivals; the Kubernetes cluster runs small containers with
// heavy-tailed runtimes. The load-bearing property — strong heterogeneity
// across clients in all four marginals — is preserved by construction.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Task is one schedulable unit of work sampled from a dataset.
type Task struct {
	ID       int     // unique within the sampled set
	Arrival  int     // arrival time slot (non-decreasing within a set)
	CPU      int     // requested vCPUs
	Mem      float64 // requested memory in GiB
	Duration int     // execution time in slots on any VM that fits it
	Source   DatasetID
}

// DatasetID identifies one of the ten modelled workload datasets.
type DatasetID int

// The ten datasets used across the paper's experiments (§3, §5.1).
const (
	Google DatasetID = iota
	Alibaba2017
	Alibaba2018
	HPCKS
	HPCHF
	HPCWZ
	KVM2019
	KVM2020
	CERITSC
	K8S
	numDatasets
)

// NumDatasets is the number of modelled datasets.
const NumDatasets = int(numDatasets)

// String returns the dataset's trace name.
func (d DatasetID) String() string {
	names := [...]string{
		"Google", "Alibaba-2017", "Alibaba-2018", "HPC-KS", "HPC-HF",
		"HPC-WZ", "KVM-2019", "KVM-2020", "CERIT-SC", "K8S",
	}
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("DatasetID(%d)", int(d))
	}
	return names[d]
}

// AllDatasets returns the ten dataset IDs in canonical order.
func AllDatasets() []DatasetID {
	out := make([]DatasetID, NumDatasets)
	for i := range out {
		out[i] = DatasetID(i)
	}
	return out
}

// Model is the generative model for one dataset. All fields are exported so
// experiments can construct ad-hoc variants (e.g. for ablations).
type Model struct {
	ID   DatasetID
	Name string

	// CPU request distribution: weighted discrete choices.
	CPUChoices []int
	CPUWeights []float64

	// Memory per requested vCPU in GiB: lognormal around MemPerCPU with
	// multiplicative spread MemSpread (sigma of the underlying normal).
	MemPerCPU float64
	MemSpread float64
	MemMin    float64
	MemMax    float64

	// Execution time in slots: lognormal(mu, sigma), truncated to
	// [DurMin, DurMax].
	DurMu    float64
	DurSigma float64
	DurMin   int
	DurMax   int

	// Arrival process: mean tasks per slot with sinusoidal diurnal
	// modulation of the given relative amplitude and period, plus
	// burstiness in (0,1]: lower values produce heavier clumping
	// (geometric batch sizes with mean 1/Burstiness).
	RatePerSlot   float64
	DiurnalAmp    float64
	DiurnalPeriod int
	Burstiness    float64
}

// Validate checks internal consistency of the model parameters.
func (m *Model) Validate() error {
	switch {
	case len(m.CPUChoices) == 0 || len(m.CPUChoices) != len(m.CPUWeights):
		return fmt.Errorf("workload: %s: CPU choices/weights mismatch", m.Name)
	case m.MemPerCPU <= 0 || m.MemMin <= 0 || m.MemMax < m.MemMin:
		return fmt.Errorf("workload: %s: invalid memory parameters", m.Name)
	case m.DurMin < 1 || m.DurMax < m.DurMin:
		return fmt.Errorf("workload: %s: invalid duration bounds", m.Name)
	case m.RatePerSlot <= 0:
		return fmt.Errorf("workload: %s: non-positive arrival rate", m.Name)
	case m.Burstiness <= 0 || m.Burstiness > 1:
		return fmt.Errorf("workload: %s: burstiness must be in (0,1]", m.Name)
	case m.DiurnalPeriod <= 0:
		return fmt.Errorf("workload: %s: diurnal period must be positive", m.Name)
	}
	total := 0.0
	for _, w := range m.CPUWeights {
		if w < 0 {
			return fmt.Errorf("workload: %s: negative CPU weight", m.Name)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("workload: %s: zero total CPU weight", m.Name)
	}
	return nil
}

// sampleCPU draws a vCPU request.
func (m *Model) sampleCPU(rng *rand.Rand) int {
	total := 0.0
	for _, w := range m.CPUWeights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range m.CPUWeights {
		acc += w
		if u < acc {
			return m.CPUChoices[i]
		}
	}
	return m.CPUChoices[len(m.CPUChoices)-1]
}

// sampleMem draws a memory request correlated with the vCPU request.
func (m *Model) sampleMem(rng *rand.Rand, cpu int) float64 {
	mem := float64(cpu) * m.MemPerCPU * math.Exp(m.MemSpread*rng.NormFloat64())
	if mem < m.MemMin {
		mem = m.MemMin
	}
	if mem > m.MemMax {
		mem = m.MemMax
	}
	// Quantize to 0.25 GiB, matching trace-style requests.
	return math.Round(mem*4) / 4
}

// sampleDuration draws an execution time in slots.
func (m *Model) sampleDuration(rng *rand.Rand) int {
	d := int(math.Round(math.Exp(m.DurMu + m.DurSigma*rng.NormFloat64())))
	if d < m.DurMin {
		d = m.DurMin
	}
	if d > m.DurMax {
		d = m.DurMax
	}
	return d
}

// Sample generates n tasks with non-decreasing arrival slots.
//
// Arrivals follow a bursty, diurnally modulated process: at each slot the
// expected batch count is RatePerSlot·(1 + DiurnalAmp·sin(2πt/period)); a
// batch materializes with probability Burstiness·rate (capped), and batch
// sizes are geometric with mean 1/Burstiness, so the marginal rate matches
// RatePerSlot while low Burstiness yields heavy clumping.
func (m *Model) Sample(rng *rand.Rand, n int) []Task {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	tasks := make([]Task, 0, n)
	slot := 0
	for len(tasks) < n {
		phase := 2 * math.Pi * float64(slot%m.DiurnalPeriod) / float64(m.DiurnalPeriod)
		rate := m.RatePerSlot * (1 + m.DiurnalAmp*math.Sin(phase))
		if rate < 0 {
			rate = 0
		}
		pBatch := m.Burstiness * rate
		if pBatch > 1 {
			pBatch = 1
		}
		if rng.Float64() < pBatch {
			// Geometric batch with mean 1/Burstiness.
			batch := 1
			for rng.Float64() > m.Burstiness && batch < 64 {
				batch++
			}
			for b := 0; b < batch && len(tasks) < n; b++ {
				cpu := m.sampleCPU(rng)
				tasks = append(tasks, Task{
					ID:       len(tasks),
					Arrival:  slot,
					CPU:      cpu,
					Mem:      m.sampleMem(rng, cpu),
					Duration: m.sampleDuration(rng),
					Source:   m.ID,
				})
			}
		}
		slot++
	}
	return tasks
}

// Lookup returns the built-in model for a dataset ID.
func Lookup(id DatasetID) *Model {
	m, ok := builtinModels[id]
	if !ok {
		panic(fmt.Sprintf("workload: unknown dataset %v", id))
	}
	c := *m
	return &c
}

// SampleDataset is shorthand for Lookup(id).Sample(rng, n).
func SampleDataset(id DatasetID, rng *rand.Rand, n int) []Task {
	return Lookup(id).Sample(rng, n)
}
