package workload

import (
	"bytes"
	"embed"
	"fmt"
	"strings"
)

// The ten builtin datasets, shipped as declarative preset specs. Each
// preset compiles to exactly its builtinModels entry, so spec-driven runs
// of a preset are bit-identical to the legacy generator (pinned by
// TestPresetSpecsMatchBuiltins).
//
//go:embed specs/*.json
var presetFS embed.FS

// presetFileName maps a dataset to its shipped spec file.
func presetFileName(id DatasetID) string {
	return "specs/" + strings.ToLower(id.String()) + ".json"
}

// PresetSpecJSON returns the raw shipped preset spec for a builtin dataset.
func PresetSpecJSON(id DatasetID) ([]byte, error) {
	if id < 0 || int(id) >= NumDatasets {
		return nil, fmt.Errorf("workload: no preset spec for dataset %v", id)
	}
	b, err := presetFS.ReadFile(presetFileName(id))
	if err != nil {
		return nil, fmt.Errorf("workload: preset %s: %w", id, err)
	}
	return b, nil
}

// PresetSpec parses and validates the shipped preset spec for a dataset.
func PresetSpec(id DatasetID) (*Spec, error) {
	raw, err := PresetSpecJSON(id)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("workload: preset %s: %w", id, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("workload: preset %s: %w", id, err)
	}
	return s, nil
}
