package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestPresetSpecsMatchBuiltins is the degradation golden for the spec
// engine: every shipped preset spec must reproduce its legacy builtin
// model's task stream bit-identically, through both Sample and Stream.
func TestPresetSpecsMatchBuiltins(t *testing.T) {
	for _, id := range AllDatasets() {
		spec, err := PresetSpec(id)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		comp, err := spec.Compile()
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if len(comp.Clients) != 1 {
			t.Fatalf("%v: preset has %d clients, want 1", id, len(comp.Clients))
		}
		for _, seed := range []int64{1, 7, 42} {
			want := SampleDataset(id, rand.New(rand.NewSource(seed)), 300)
			got := comp.Sample(rand.New(rand.NewSource(seed)), 300)
			if len(got) != len(want) {
				t.Fatalf("%v seed %d: Sample emitted %d tasks, want %d", id, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v seed %d: Sample task %d = %+v, want %+v", id, seed, i, got[i], want[i])
				}
			}
			st := comp.Stream(rand.New(rand.NewSource(seed)), 300)
			for i := range want {
				tk, ok := st.Next()
				if !ok {
					t.Fatalf("%v seed %d: Stream ended at task %d", id, seed, i)
				}
				if tk != want[i] {
					t.Fatalf("%v seed %d: Stream task %d = %+v, want %+v", id, seed, i, tk, want[i])
				}
			}
			if _, ok := st.Next(); ok {
				t.Fatalf("%v seed %d: Stream emitted more than %d tasks", id, seed, len(want))
			}
		}
	}
}

// legacyReferenceSample is the pre-refactor generator, kept verbatim as the
// golden reference: per-slot batch gate, geometric batches, and — the perf
// nit this PR fixed — a CPU sampler that re-sums the weight vector on every
// draw. The cumulative-weight sampler must select identically.
func legacyReferenceSample(m *Model, rng *rand.Rand, n int) []Task {
	sampleCPU := func() int {
		total := 0.0
		for _, w := range m.CPUWeights {
			total += w
		}
		u := rng.Float64() * total
		acc := 0.0
		for i, w := range m.CPUWeights {
			acc += w
			if u < acc {
				return m.CPUChoices[i]
			}
		}
		return m.CPUChoices[len(m.CPUChoices)-1]
	}
	tasks := make([]Task, 0, n)
	slot := 0
	for len(tasks) < n {
		phase := 2 * math.Pi * float64(slot%m.DiurnalPeriod) / float64(m.DiurnalPeriod)
		rate := m.RatePerSlot * (1 + m.DiurnalAmp*math.Sin(phase))
		if rate < 0 {
			rate = 0
		}
		pBatch := m.Burstiness * rate
		if pBatch > 1 {
			pBatch = 1
		}
		if rng.Float64() < pBatch {
			batch := 1
			for rng.Float64() > m.Burstiness && batch < 64 {
				batch++
			}
			for b := 0; b < batch && len(tasks) < n; b++ {
				cpu := sampleCPU()
				tasks = append(tasks, Task{
					ID:       len(tasks),
					Arrival:  slot,
					CPU:      cpu,
					Mem:      m.sampleMem(rng, cpu),
					Duration: m.sampleDuration(rng),
					Source:   m.ID,
					SLO:      m.SLO,
				})
			}
		}
		slot++
	}
	return tasks
}

// TestSampleMatchesLegacyGenerator pins the Stream-drain Sample (with its
// precomputed cumulative CPU weights) against a verbatim copy of the
// historical generator, for every builtin model and several seeds.
func TestSampleMatchesLegacyGenerator(t *testing.T) {
	for _, id := range AllDatasets() {
		m := Lookup(id)
		for _, seed := range []int64{1, 7, 42, 1234} {
			want := legacyReferenceSample(m, rand.New(rand.NewSource(seed)), 400)
			got := m.Sample(rand.New(rand.NewSource(seed)), 400)
			if len(got) != len(want) {
				t.Fatalf("%v seed %d: %d tasks, want %d", id, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v seed %d: task %d = %+v, want %+v", id, seed, i, got[i], want[i])
				}
			}
		}
	}
}

func twoClientTestSpec() *Spec {
	return &Spec{
		Name: "two-tenant",
		Clients: []SpecClient{
			{
				ID: "interactive", RateFraction: 0.7, SLOClass: "critical",
				Arrival: ArrivalSpec{Process: "poisson", RatePerSlot: 1.2, DiurnalAmp: 0.3},
				CPU:     CPUSpec{Choices: []int{1, 2}, Weights: []float64{0.8, 0.2}},
				Memory:  MemSpec{PerCPU: 2, Spread: 0.4, Min: 0.25, Max: 16},
				Duration: DurSpec{
					Dist: "quantile", Quantiles: []float64{1, 2, 4, 9, 30}, Min: 1, Max: 40,
				},
			},
			{
				ID: "batch", RateFraction: 0.3, SLOClass: "best-effort",
				Arrival: ArrivalSpec{Process: "gamma-burst", RatePerSlot: 0.4, Burstiness: 0.5, GapShape: 2},
				CPU:     CPUSpec{Choices: []int{4, 8, 16}, Weights: []float64{0.5, 0.3, 0.2}},
				Memory: MemSpec{
					Dist: "quantile", Quantiles: []float64{8, 16, 32, 64, 96}, Min: 4, Max: 128,
				},
				Duration: DurSpec{Median: 60, Sigma: 1.0, Min: 5, Max: 500},
			},
		},
	}
}

// TestMultiClientSpecDeterminism runs a two-client spec twice with the same
// seed (run-twice determinism) and checks the sampled set is well-formed:
// arrival-ordered, rebased, IDs sequential, fields within spec bounds, and
// both clients' SLO classes present in roughly their rate fractions.
func TestMultiClientSpecDeterminism(t *testing.T) {
	comp, err := twoClientTestSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	a := comp.Sample(rand.New(rand.NewSource(9)), n)
	b := comp.Sample(rand.New(rand.NewSource(9)), n)
	if len(a) != n || len(b) != n {
		t.Fatalf("sampled %d and %d tasks, want %d", len(a), len(b), n)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-twice divergence at task %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].Arrival != 0 {
		// Combine rebases: the earliest arrival must sit at slot 0.
		t.Fatalf("first arrival = %d, want 0", a[0].Arrival)
	}
	counts := map[SLOClass]int{}
	for i, tk := range a {
		if tk.ID != i {
			t.Fatalf("task %d has ID %d", i, tk.ID)
		}
		if i > 0 && tk.Arrival < a[i-1].Arrival {
			t.Fatalf("arrival regression at task %d", i)
		}
		counts[tk.SLO]++
		switch tk.SLO {
		case SLOCritical:
			if tk.CPU > 2 || tk.Duration > 40 {
				t.Fatalf("interactive task %d out of bounds: %+v", i, tk)
			}
		case SLOBestEffort:
			if tk.CPU < 4 || tk.Mem < 4 {
				t.Fatalf("batch task %d out of bounds: %+v", i, tk)
			}
		default:
			t.Fatalf("task %d has unexpected class %v", i, tk.SLO)
		}
	}
	if counts[SLOCritical] != 420 || counts[SLOBestEffort] != 180 {
		t.Fatalf("class shares = %v, want 70/30 split of %d (420/180)", counts, n)
	}
}

// TestSpecStreamMatchesSample pins the multi-client merge stream against
// the Combine-based Sample path, bit for bit.
func TestSpecStreamMatchesSample(t *testing.T) {
	comp, err := twoClientTestSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{3, 11, 77} {
		want := comp.Sample(rand.New(rand.NewSource(seed)), 500)
		st := comp.Stream(rand.New(rand.NewSource(seed)), 500)
		if st.Remaining() != 500 {
			t.Fatalf("seed %d: Remaining = %d, want 500", seed, st.Remaining())
		}
		for i := range want {
			tk, ok := st.Next()
			if !ok {
				t.Fatalf("seed %d: stream ended at task %d", seed, i)
			}
			if tk != want[i] {
				t.Fatalf("seed %d: task %d = %+v, want %+v", seed, i, tk, want[i])
			}
		}
		if _, ok := st.Next(); ok {
			t.Fatalf("seed %d: stream emitted extra tasks", seed)
		}
		if st.Remaining() != 0 {
			t.Fatalf("seed %d: Remaining = %d after drain", seed, st.Remaining())
		}
	}
}

// TestSpecParseErrors exercises the strict parser and the validator's
// client/field error context.
func TestSpecParseErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"malformed", `{"name": "x", "clients": [`, "parse spec"},
		{"unknown field", `{"name": "x", "burstiness": 1}`, "unknown field"},
		{"trailing data", `{"name": "x", "clients": []} {}`, "trailing data"},
		{"no clients", `{"name": "x", "clients": []}`, "no clients"},
		{
			"empty id",
			`{"clients": [{"rate_fraction": 1, "arrival": {"rate_per_slot": 1, "burstiness": 1},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			"id: must not be empty",
		},
		{
			"bad process",
			`{"clients": [{"id": "a", "rate_fraction": 1,
			  "arrival": {"process": "lognormal", "rate_per_slot": 1},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			`arrival.process: unknown "lognormal"`,
		},
		{
			"bad slo class",
			`{"clients": [{"id": "a", "rate_fraction": 1, "slo_class": "gold",
			  "arrival": {"rate_per_slot": 1, "burstiness": 1},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			`unknown slo_class "gold"`,
		},
		{
			"zero rate fraction",
			`{"clients": [{"id": "a", "rate_fraction": 0,
			  "arrival": {"rate_per_slot": 1, "burstiness": 1},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			"rate_fraction",
		},
		{
			"zero weight sum",
			`{"clients": [{"id": "a", "rate_fraction": 1,
			  "arrival": {"rate_per_slot": 1, "burstiness": 1},
			  "cpu": {"choices": [1, 2], "weights": [0, 0]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			"zero total CPU weight",
		},
		{
			"duplicate client id",
			`{"name": "dup", "clients": [
			  {"id": "a", "rate_fraction": 1,
			   "arrival": {"rate_per_slot": 1, "burstiness": 1},
			   "cpu": {"choices": [1], "weights": [1]},
			   "memory": {"per_cpu": 1, "min": 1, "max": 2},
			   "duration": {"median": 5, "min": 1, "max": 10}},
			  {"id": "a", "rate_fraction": 1,
			   "arrival": {"rate_per_slot": 1, "burstiness": 1},
			   "cpu": {"choices": [1], "weights": [1]},
			   "memory": {"per_cpu": 1, "min": 1, "max": 2},
			   "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			`id: duplicate "a"`,
		},
		{
			"missing gap shape",
			`{"clients": [{"id": "a", "rate_fraction": 1,
			  "arrival": {"process": "weibull", "rate_per_slot": 1, "burstiness": 0.5},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"per_cpu": 1, "min": 1, "max": 2},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			"gap shape",
		},
		{
			"decreasing quantiles",
			`{"clients": [{"id": "a", "rate_fraction": 1,
			  "arrival": {"rate_per_slot": 1, "burstiness": 1},
			  "cpu": {"choices": [1], "weights": [1]},
			  "memory": {"dist": "quantile", "quantiles": [4, 2], "min": 1, "max": 8},
			  "duration": {"median": 5, "min": 1, "max": 10}}]}`,
			"memory quantiles",
		},
	}
	for _, tc := range cases {
		s, err := ParseSpec(strings.NewReader(tc.json))
		if err == nil {
			err = s.Validate()
		}
		if err == nil {
			t.Errorf("%s: no error, want one containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadSpecFileContext checks that file-level failures carry the path.
func TestLoadSpecFileContext(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/spec.json"); err == nil ||
		!strings.Contains(err.Error(), "/nonexistent/spec.json") {
		t.Fatalf("missing file error lacks path context: %v", err)
	}
}

// TestArrivalProcessesProduceValidStreams checks the non-legacy arrival
// processes emit ordered, bounded, deterministic streams.
func TestArrivalProcessesProduceValidStreams(t *testing.T) {
	base := Lookup(Google)
	for _, kind := range []ArrivalKind{ArrivalPoisson, ArrivalGammaBurst, ArrivalWeibull} {
		m := *base
		m.Arrival = kind
		m.GapShape = 1.5
		a := m.Sample(rand.New(rand.NewSource(5)), 500)
		b := m.Sample(rand.New(rand.NewSource(5)), 500)
		if len(a) != 500 {
			t.Fatalf("%d: sampled %d tasks", kind, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%d: nondeterministic at task %d", kind, i)
			}
			if i > 0 && a[i].Arrival < a[i-1].Arrival {
				t.Fatalf("%d: arrival regression at task %d", kind, i)
			}
			if a[i].CPU < 1 || !(a[i].Mem > 0) || a[i].Duration < m.DurMin || a[i].Duration > m.DurMax {
				t.Fatalf("%d: invalid task %+v", kind, a[i])
			}
		}
	}
}

// TestQuantileSampling checks inverse-CDF draws stay within the grid's
// hull and hit both tails across many draws.
func TestQuantileSampling(t *testing.T) {
	q := []float64{2, 4, 8, 16}
	rng := rand.New(rand.NewSource(3))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		v := sampleQuantile(q, rng.Float64())
		if v < 2 || v > 16 {
			t.Fatalf("draw %v outside [2, 16]", v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 3 || hi < 12 {
		t.Fatalf("draws never reached the tails: min %v max %v", lo, hi)
	}
	if got := sampleQuantile(q, 1); got != 16 {
		t.Fatalf("u=1 -> %v, want 16", got)
	}
	if got := sampleQuantile(q, 0); got != 2 {
		t.Fatalf("u=0 -> %v, want 2", got)
	}
	if got := sampleQuantile(q, 0.5); got != 6 {
		t.Fatalf("u=0.5 -> %v, want 6 (midpoint of 4 and 8)", got)
	}
}
