package workload

import (
	"math"
	"sort"
)

// Characterization summarizes one sampled task set the way the paper's
// Figures 2–5 characterize the real traces.
type Characterization struct {
	Dataset       string
	Tasks         int
	CPUMean       float64
	CPUP50        float64
	CPUP95        float64
	MemMean       float64
	MemP50        float64
	MemP95        float64
	DurMean       float64
	DurP50        float64
	DurP95        float64
	RatePerSlot   float64 // measured mean arrival rate
	RatePeak      float64 // peak hourly-equivalent rate (per DiurnalPeriod/24 slots)
	MakespanSlots int     // last arrival slot
}

// Characterize computes summary statistics for a task set.
func Characterize(name string, tasks []Task) Characterization {
	c := Characterization{Dataset: name, Tasks: len(tasks)}
	if len(tasks) == 0 {
		return c
	}
	cpus := make([]float64, len(tasks))
	mems := make([]float64, len(tasks))
	durs := make([]float64, len(tasks))
	lastArrival := 0
	for i, t := range tasks {
		cpus[i] = float64(t.CPU)
		mems[i] = t.Mem
		durs[i] = float64(t.Duration)
		if t.Arrival > lastArrival {
			lastArrival = t.Arrival
		}
	}
	c.CPUMean, c.CPUP50, c.CPUP95 = meanP50P95(cpus)
	c.MemMean, c.MemP50, c.MemP95 = meanP50P95(mems)
	c.DurMean, c.DurP50, c.DurP95 = meanP50P95(durs)
	c.MakespanSlots = lastArrival
	if lastArrival > 0 {
		c.RatePerSlot = float64(len(tasks)) / float64(lastArrival+1)
	} else {
		c.RatePerSlot = float64(len(tasks))
	}
	rates := HourlyArrivalRates(tasks, 6) // 6-slot buckets ≈ "hours" at period 144
	for _, r := range rates {
		if r > c.RatePeak {
			c.RatePeak = r
		}
	}
	return c
}

func meanP50P95(v []float64) (mean, p50, p95 float64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	total := 0.0
	for _, x := range s {
		total += x
	}
	mean = total / float64(len(s))
	p50 = percentileSorted(s, 0.50)
	p95 = percentileSorted(s, 0.95)
	return mean, p50, p95
}

func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// HourlyArrivalRates buckets arrivals into windows of bucketSlots and
// returns tasks-per-slot for each bucket (the series behind Figure 4).
func HourlyArrivalRates(tasks []Task, bucketSlots int) []float64 {
	if len(tasks) == 0 || bucketSlots <= 0 {
		return nil
	}
	last := 0
	for _, t := range tasks {
		if t.Arrival > last {
			last = t.Arrival
		}
	}
	nBuckets := last/bucketSlots + 1
	counts := make([]float64, nBuckets)
	for _, t := range tasks {
		counts[t.Arrival/bucketSlots]++
	}
	for i := range counts {
		counts[i] /= float64(bucketSlots)
	}
	return counts
}

// ExecTimeCDF returns (durations, cumulative fractions) — the empirical CDF
// of task execution times behind Figure 5, evaluated at each distinct
// duration in ascending order.
func ExecTimeCDF(tasks []Task) (durations []float64, cdf []float64) {
	if len(tasks) == 0 {
		return nil, nil
	}
	d := make([]float64, len(tasks))
	for i, t := range tasks {
		d[i] = float64(t.Duration)
	}
	sort.Float64s(d)
	n := float64(len(d))
	for i := 0; i < len(d); {
		j := i
		for j < len(d) && d[j] == d[i] {
			j++
		}
		durations = append(durations, d[i])
		cdf = append(cdf, float64(j)/n)
		i = j
	}
	return durations, cdf
}

// ResourceHistogram buckets a resource dimension (selected by f) into
// equal-width bins between the min and max observed values and returns bin
// upper edges with counts (the series behind Figures 2–3).
func ResourceHistogram(tasks []Task, bins int, f func(Task) float64) (edges []float64, counts []int) {
	if len(tasks) == 0 || bins <= 0 {
		return nil, nil
	}
	lo, hi := f(tasks[0]), f(tasks[0])
	for _, t := range tasks[1:] {
		v := f(t)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(bins)
	edges = make([]float64, bins)
	counts = make([]int, bins)
	for i := range edges {
		edges[i] = lo + width*float64(i+1)
	}
	for _, t := range tasks {
		b := int((f(t) - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
