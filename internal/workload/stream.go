package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
)

// Stream generates the same task sequence as Model.Sample, one task at a
// time, so thousand-VM / million-task episodes never materialize the full
// workload. The generator holds only the current slot and the remainder of
// the in-flight arrival batch (at most 64 tasks are ever pending), and its
// RNG consumption order matches Sample exactly: for the same model, seed,
// and n, the emitted tasks are bit-identical to Sample's slice (pinned by
// TestStreamMatchesSample — trivially so, since Sample now drains a Stream).
type Stream struct {
	m   *Model
	rng *rand.Rand
	n   int

	// Cumulative CPU weights, precomputed once so each draw costs one
	// uniform plus a binary search instead of re-summing the weight
	// vector. The running sums accumulate in the same order the historical
	// per-draw scan did, so selections are bit-identical (pinned by
	// TestSampleMatchesLegacyGenerator).
	cpuCum   []float64
	cpuTotal float64

	produced  int
	slot      int // next slot to draw an arrival batch for
	batchSlot int // arrival slot of the in-flight batch
	batchLeft int // tasks remaining in the in-flight batch
}

// Stream returns a lazy generator over n tasks drawn from the model. It
// panics on an invalid model, like Sample.
func (m *Model) Stream(rng *rand.Rand, n int) *Stream {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	s := &Stream{m: m, rng: rng, n: n}
	s.cpuCum = make([]float64, len(m.CPUWeights))
	acc := 0.0
	for i, w := range m.CPUWeights {
		acc += w
		s.cpuCum[i] = acc
	}
	s.cpuTotal = acc
	return s
}

// Remaining returns the number of tasks the stream will still emit.
func (s *Stream) Remaining() int { return s.n - s.produced }

// rateAt is the diurnally modulated arrival rate at a slot — the exact
// expression the legacy generator inlined, kept verbatim so the burst path
// stays bit-identical.
func (s *Stream) rateAt(slot int) float64 {
	m := s.m
	phase := 2 * math.Pi * float64(slot%m.DiurnalPeriod) / float64(m.DiurnalPeriod)
	rate := m.RatePerSlot * (1 + m.DiurnalAmp*math.Sin(phase))
	if rate < 0 {
		rate = 0
	}
	return rate
}

// sampleCPU draws a vCPU request from the precomputed cumulative weights:
// the first index whose running sum exceeds u, exactly as the legacy linear
// scan selected it (including the fall-through to the last choice).
func (s *Stream) sampleCPU() int {
	u := s.rng.Float64() * s.cpuTotal
	i := sort.Search(len(s.cpuCum), func(j int) bool { return u < s.cpuCum[j] })
	if i >= len(s.cpuCum) {
		i = len(s.cpuCum) - 1
	}
	return s.m.CPUChoices[i]
}

// geometricBatch draws a batch size with mean 1/Burstiness, capped at 64.
func (s *Stream) geometricBatch() int {
	batch := 1
	for s.rng.Float64() > s.m.Burstiness && batch < 64 {
		batch++
	}
	return batch
}

// nextGapBatch advances the gap-based renewal processes: geometric batches
// separated by gamma- or Weibull-distributed gaps whose mean
// 1/(rate·Burstiness) keeps the marginal task rate at the diurnally
// modulated RatePerSlot. The rate is floored at 1% of RatePerSlot so deep
// diurnal troughs cannot produce unbounded gaps.
func (s *Stream) nextGapBatch() {
	m := s.m
	rate := s.rateAt(s.slot)
	if floor := 0.01 * m.RatePerSlot; rate < floor {
		rate = floor
	}
	meanGap := 1 / (rate * m.Burstiness)
	var gap float64
	if m.Arrival == ArrivalGammaBurst {
		gap = gammaSample(s.rng, m.GapShape, meanGap/m.GapShape)
	} else {
		gap = weibullSample(s.rng, m.GapShape, meanGap/math.Gamma(1+1/m.GapShape))
	}
	g := int(math.Round(gap))
	if g < 1 {
		g = 1
	}
	s.slot += g
	s.batchLeft = s.geometricBatch()
	s.batchSlot = s.slot
}

// Next emits the next task, or false once n tasks have been produced.
// Arrival slots are non-decreasing by construction.
func (s *Stream) Next() (Task, bool) {
	if s.produced >= s.n {
		return Task{}, false
	}
	m := s.m
	for s.batchLeft == 0 {
		switch m.Arrival {
		case ArrivalPoisson:
			if k := poissonCount(s.rng, s.rateAt(s.slot)); k > 0 {
				s.batchLeft = k
				s.batchSlot = s.slot
			}
			s.slot++
		case ArrivalGammaBurst, ArrivalWeibull:
			s.nextGapBatch()
		default:
			// ArrivalBurst — the legacy per-slot draw order: one Float64
			// for the batch gate, then the geometric batch-size draws.
			pBatch := m.Burstiness * s.rateAt(s.slot)
			if pBatch > 1 {
				pBatch = 1
			}
			if s.rng.Float64() < pBatch {
				s.batchLeft = s.geometricBatch()
				s.batchSlot = s.slot
			}
			s.slot++
		}
	}
	cpu := s.sampleCPU()
	t := Task{
		ID:       s.produced,
		Arrival:  s.batchSlot,
		CPU:      cpu,
		Mem:      m.sampleMem(s.rng, cpu),
		Duration: m.sampleDuration(s.rng),
		Source:   m.ID,
		SLO:      m.SLO,
	}
	s.produced++
	s.batchLeft--
	return t, true
}

// poissonCount draws a Poisson(lambda) count via Knuth's product method.
// The iteration cap bounds pathological rates; the product underflows to 0
// long before it triggers for any realistic RatePerSlot.
func poissonCount(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > limit && k < 4096 {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// gammaSample draws from Gamma(shape, scale) via Marsaglia–Tsang squeeze,
// boosting shapes below one with the standard U^(1/shape) factor.
func gammaSample(rng *rand.Rand, shape, scale float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// weibullSample draws from Weibull(shape, scale) by inverting the CDF.
func weibullSample(rng *rand.Rand, shape, scale float64) float64 {
	u := 1 - rng.Float64() // in (0, 1]
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// CSVStream replays a trace in the ExportCSV format one task at a time, so
// arbitrarily large traces can drive the simulator without loading them into
// memory. Malformed records and arrival-order regressions stop the stream
// deterministically: Next returns false and Err reports the problem, exactly
// the rejections ImportCSV applies in batch (pinned by FuzzCSVStream).
type CSVStream struct {
	cr          *csv.Reader
	line        int
	lastArrival int
	count       int
	err         error
	done        bool
}

// NewCSVStream validates the header and returns a streaming reader over r.
func NewCSVStream(r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV header: %w", err)
	}
	if err := validateCSVHeader(header); err != nil {
		return nil, err
	}
	return &CSVStream{cr: cr, line: 1}, nil
}

// Next returns the next task in the trace, or false at EOF or on the first
// malformed record (see Err).
func (s *CSVStream) Next() (Task, bool) {
	if s.done {
		return Task{}, false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return Task{}, false
	}
	if err != nil {
		s.fail(fmt.Errorf("workload: CSV line %d: %w", s.line, err))
		return Task{}, false
	}
	t, err := parseCSVTask(rec)
	if err != nil {
		s.fail(fmt.Errorf("workload: CSV line %d: %w", s.line, err))
		return Task{}, false
	}
	if s.count > 0 && t.Arrival < s.lastArrival {
		s.fail(fmt.Errorf("workload: CSV arrivals not sorted at row %d", s.count))
		return Task{}, false
	}
	s.lastArrival = t.Arrival
	s.count++
	return t, true
}

// Err returns the error that stopped the stream, or nil after a clean EOF.
func (s *CSVStream) Err() error { return s.err }

func (s *CSVStream) fail(err error) {
	s.err = err
	s.done = true
}
