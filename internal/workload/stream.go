package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Stream generates the same task sequence as Model.Sample, one task at a
// time, so thousand-VM / million-task episodes never materialize the full
// workload. The generator holds only the current slot and the remainder of
// the in-flight arrival batch (at most 64 tasks are ever pending), and its
// RNG consumption order matches Sample exactly: for the same model, seed,
// and n, the emitted tasks are bit-identical to Sample's slice (pinned by
// TestStreamMatchesSample).
type Stream struct {
	m   *Model
	rng *rand.Rand
	n   int

	produced  int
	slot      int // next slot to draw an arrival batch for
	batchSlot int // arrival slot of the in-flight batch
	batchLeft int // tasks remaining in the in-flight batch
}

// Stream returns a lazy generator over n tasks drawn from the model. It
// panics on an invalid model, like Sample.
func (m *Model) Stream(rng *rand.Rand, n int) *Stream {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &Stream{m: m, rng: rng, n: n}
}

// Remaining returns the number of tasks the stream will still emit.
func (s *Stream) Remaining() int { return s.n - s.produced }

// Next emits the next task, or false once n tasks have been produced.
// Arrival slots are non-decreasing by construction.
func (s *Stream) Next() (Task, bool) {
	if s.produced >= s.n {
		return Task{}, false
	}
	m := s.m
	for s.batchLeft == 0 {
		// Advance slots until an arrival batch materializes — the same
		// per-slot draw order as Sample: one Float64 for the batch gate,
		// then the geometric batch-size draws.
		phase := 2 * math.Pi * float64(s.slot%m.DiurnalPeriod) / float64(m.DiurnalPeriod)
		rate := m.RatePerSlot * (1 + m.DiurnalAmp*math.Sin(phase))
		if rate < 0 {
			rate = 0
		}
		pBatch := m.Burstiness * rate
		if pBatch > 1 {
			pBatch = 1
		}
		if s.rng.Float64() < pBatch {
			batch := 1
			for s.rng.Float64() > m.Burstiness && batch < 64 {
				batch++
			}
			s.batchLeft = batch
			s.batchSlot = s.slot
		}
		s.slot++
	}
	cpu := m.sampleCPU(s.rng)
	t := Task{
		ID:       s.produced,
		Arrival:  s.batchSlot,
		CPU:      cpu,
		Mem:      m.sampleMem(s.rng, cpu),
		Duration: m.sampleDuration(s.rng),
		Source:   m.ID,
	}
	s.produced++
	s.batchLeft--
	return t, true
}

// CSVStream replays a trace in the ExportCSV format one task at a time, so
// arbitrarily large traces can drive the simulator without loading them into
// memory. Malformed records and arrival-order regressions stop the stream
// deterministically: Next returns false and Err reports the problem, exactly
// the rejections ImportCSV applies in batch (pinned by FuzzCSVStream).
type CSVStream struct {
	cr          *csv.Reader
	line        int
	lastArrival int
	count       int
	err         error
	done        bool
}

// NewCSVStream validates the header and returns a streaming reader over r.
func NewCSVStream(r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("workload: CSV has %d columns, want %d (%v)", len(header), len(csvHeader), csvHeader)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("workload: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	return &CSVStream{cr: cr, line: 1}, nil
}

// Next returns the next task in the trace, or false at EOF or on the first
// malformed record (see Err).
func (s *CSVStream) Next() (Task, bool) {
	if s.done {
		return Task{}, false
	}
	s.line++
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return Task{}, false
	}
	if err != nil {
		s.fail(fmt.Errorf("workload: CSV line %d: %w", s.line, err))
		return Task{}, false
	}
	t, err := parseCSVTask(rec)
	if err != nil {
		s.fail(fmt.Errorf("workload: CSV line %d: %w", s.line, err))
		return Task{}, false
	}
	if s.count > 0 && t.Arrival < s.lastArrival {
		s.fail(fmt.Errorf("workload: CSV arrivals not sorted at row %d", s.count))
		return Task{}, false
	}
	s.lastArrival = t.Arrival
	s.count++
	return t, true
}

// Err returns the error that stopped the stream, or nil after a clean EOF.
func (s *CSVStream) Err() error { return s.err }

func (s *CSVStream) fail(err error) {
	s.err = err
	s.done = true
}
