package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoadCheckpoint feeds arbitrary bytes to the MLP deserializer.
// Malformed input must produce an error — never a panic, and never an
// attempt to build the declared architecture before it is validated.
func FuzzLoadCheckpoint(f *testing.F) {
	var buf bytes.Buffer
	m := NewMLP(rand.New(rand.NewSource(1)), "seed", []int{3, 4, 2}, ActTanh, 1.0)
	if err := SaveMLP(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"format":"pfrl-dm/mlp/v1","sizes":[2,-1],"activation":"tanh","params":[]}`))
	f.Add([]byte(`{"format":"pfrl-dm/mlp/v1","sizes":[65536,65536],"activation":"relu","params":[]}`))
	f.Add([]byte(`{"format":"pfrl-dm/mlp/v1","sizes":[2],"activation":"none","params":[1,2]}`))
	f.Add([]byte(`{"format":"wrong"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadMLP(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must round-trip: a Load→Save→Load cycle may not
		// fail or change the architecture.
		var out bytes.Buffer
		if err := SaveMLP(&out, loaded); err != nil {
			t.Fatalf("accepted checkpoint failed to re-save: %v", err)
		}
		again, err := LoadMLP(&out)
		if err != nil {
			t.Fatalf("re-saved checkpoint failed to re-load: %v", err)
		}
		a, b := loaded.Sizes(), again.Sizes()
		if len(a) != len(b) {
			t.Fatalf("round-trip changed depth: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round-trip changed sizes: %v vs %v", a, b)
			}
		}
	})
}
