package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// TestInferMatchesForwardBitwise is the tentpole correctness gate for the
// inference fast path: Infer must reproduce the tape-based Forward exactly,
// for every activation, for batch sizes 1 and >1, and when its dst buffer is
// reused (and dirty) across calls.
func TestInferMatchesForwardBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, act := range []Activation{ActTanh, ActReLU, ActNone} {
		for _, sizes := range [][]int{{9, 5}, {13, 64, 7}, {11, 32, 16, 3}} {
			m := NewMLP(rng, "m", sizes, act, 0.01)
			dst := tensor.New(1, sizes[len(sizes)-1])
			for _, batch := range []int{1, 1, 6} { // repeat batch 1 to exercise dst reuse
				x := tensor.RandNormal(rng, batch, sizes[0], 0, 1)
				tape := autograd.NewTape()
				want := m.Forward(tape, tape.Const(x)).Data

				if dst.Rows != batch {
					dst = tensor.New(batch, sizes[len(sizes)-1])
				}
				dst.Fill(123.456) // dirty buffer must not influence the result
				got := m.Infer(dst, x)
				if got != dst {
					t.Fatalf("Infer did not write into dst")
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("act=%v sizes=%v batch=%d: Infer[%d]=%v, Forward=%v",
							act, sizes, batch, i, got.Data[i], want.Data[i])
					}
				}

				pred := m.Predict(x)
				for i := range want.Data {
					if math.Float64bits(pred.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("Predict deviates from Forward at %d", i)
					}
				}
			}
		}
	}
}

// TestInferConcurrentDistinctMLPs runs Infer on separate MLPs from many
// goroutines sharing the default tensor pool (run under -race in CI).
func TestInferConcurrentDistinctMLPs(t *testing.T) {
	done := make(chan [2]*tensor.Matrix)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			m := NewMLP(rng, "m", []int{17, 64, 4}, ActTanh, 0.01)
			x := tensor.RandNormal(rng, 1, 17, 0, 1)
			dst := tensor.New(1, 4)
			for i := 0; i < 200; i++ {
				m.Infer(dst, x)
			}
			tape := autograd.NewTape()
			done <- [2]*tensor.Matrix{dst.Clone(), m.Forward(tape, tape.Const(x)).Data}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		pair := <-done
		for i := range pair[1].Data {
			if math.Float64bits(pair[0].Data[i]) != math.Float64bits(pair[1].Data[i]) {
				t.Fatalf("concurrent Infer deviates from Forward")
			}
		}
	}
}

func TestSetLogitsMatchesNewCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	reused := &Categorical{}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(9)
		logits := make([]float64, n)
		for i := range logits {
			logits[i] = rng.NormFloat64() * 3
		}
		var mask []bool
		switch trial % 3 {
		case 1:
			mask = make([]bool, n)
			for i := range mask {
				mask[i] = rng.Float64() < 0.6
			}
		case 2:
			mask = make([]bool, n) // fully masked → uniform fallback
		}
		want := NewCategorical(logits, mask)
		reused.SetLogits(logits, mask)
		for a := 0; a < n; a++ {
			if math.Float64bits(reused.Prob(a)) != math.Float64bits(want.Prob(a)) {
				t.Fatalf("trial %d: Prob(%d) %v != %v", trial, a, reused.Prob(a), want.Prob(a))
			}
			if math.Float64bits(reused.LogProb(a)) != math.Float64bits(want.LogProb(a)) {
				t.Fatalf("trial %d: LogProb(%d) %v != %v", trial, a, reused.LogProb(a), want.LogProb(a))
			}
		}
		if math.Abs(reused.Entropy()-want.Entropy()) != 0 {
			t.Fatalf("trial %d: entropy mismatch", trial)
		}
	}
}

// TestSetLogitsClearsStaleMaskedProbs guards the reuse-specific bug class:
// a masked action must have probability zero even when the reused buffer
// held a positive value for it on the previous step.
func TestSetLogitsClearsStaleMaskedProbs(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 3}, nil)
	if c.Prob(0) == 0 {
		t.Fatal("setup: expected nonzero prob")
	}
	c.SetLogits([]float64{1, 2, 3}, []bool{false, true, true})
	if c.Prob(0) != 0 {
		t.Fatalf("stale probability leaked through mask: %v", c.Prob(0))
	}
	if !math.IsInf(c.LogProb(0), -1) {
		t.Fatalf("masked logp should be -Inf, got %v", c.LogProb(0))
	}
	// Shrinking then regrowing must not resurrect old values.
	c.SetLogits([]float64{5}, nil)
	c.SetLogits([]float64{0, 0, 0}, []bool{true, false, true})
	if c.Prob(1) != 0 {
		t.Fatalf("regrown buffer leaked stale prob: %v", c.Prob(1))
	}
}
