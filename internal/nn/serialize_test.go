package nn

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, "net", []int{4, 8, 2}, ActTanh, 0.5)
	var buf bytes.Buffer
	if err := SaveMLP(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandNormal(rng, 3, 4, 0, 1)
	if !m.Predict(in).ApproxEqual(loaded.Predict(in), 1e-12) {
		t.Fatal("round trip changed outputs")
	}
	if loaded.Act != ActTanh {
		t.Fatal("activation lost")
	}
}

func TestSaveLoadMLPAllActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, act := range []Activation{ActTanh, ActReLU, ActNone} {
		m := NewMLP(rng, "net", []int{2, 3, 1}, act, 1.0)
		var buf bytes.Buffer
		if err := SaveMLP(&buf, m); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadMLP(&buf)
		if err != nil {
			t.Fatalf("%v: %v", act, err)
		}
		in := tensor.RandNormal(rng, 2, 2, 0, 1)
		if !m.Predict(in).ApproxEqual(loaded.Predict(in), 1e-12) {
			t.Fatalf("%v: outputs differ", act)
		}
	}
}

func TestLoadMLPRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"format":"other","sizes":[2,1],"activation":"tanh","params":[]}`,
		`{"format":"pfrl-dm/mlp/v1","sizes":[2],"activation":"tanh","params":[]}`,
		`{"format":"pfrl-dm/mlp/v1","sizes":[2,1],"activation":"swish","params":[]}`,
		`{"format":"pfrl-dm/mlp/v1","sizes":[2,1],"activation":"tanh","params":[1,2]}`,
	}
	for i, c := range cases {
		if _, err := LoadMLP(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMLPFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mlp.json")
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, "net", []int{3, 4, 1}, ActReLU, 1.0)
	if err := SaveMLPFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMLPFile(path)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandNormal(rng, 2, 3, 0, 1)
	if !m.Predict(in).ApproxEqual(loaded.Predict(in), 1e-12) {
		t.Fatal("file round trip changed outputs")
	}
	if _, err := LoadMLPFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected missing-file error")
	}
}
