package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "fc", 5, 3, 1.0)
	tape := autograd.NewTape()
	x := tape.Const(tensor.RandNormal(rng, 4, 5, 0, 1))
	y := l.Forward(tape, x)
	if y.Data.Rows != 4 || y.Data.Cols != 3 {
		t.Fatalf("Linear output %dx%d, want 4x3", y.Data.Rows, y.Data.Cols)
	}
}

func TestLinearBiasApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "fc", 2, 2, 1.0)
	l.W.Data.Zero()
	l.B.Data.Data[0] = 1.5
	l.B.Data.Data[1] = -2.5
	tape := autograd.NewTape()
	y := l.Forward(tape, tape.Const(tensor.New(1, 2)))
	if y.Data.Data[0] != 1.5 || y.Data.Data[1] != -2.5 {
		t.Fatalf("bias not applied: %v", y.Data.Data)
	}
}

func TestMLPShapesAndSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, "net", []int{10, 64, 64, 5}, ActTanh, 0.01)
	if len(m.Layers) != 3 {
		t.Fatalf("want 3 layers, got %d", len(m.Layers))
	}
	out := m.Predict(tensor.RandNormal(rng, 7, 10, 0, 1))
	if out.Rows != 7 || out.Cols != 5 {
		t.Fatalf("MLP output %dx%d", out.Rows, out.Cols)
	}
	want := 10*64 + 64 + 64*64 + 64 + 64*5 + 5
	if NumParams(m) != want {
		t.Fatalf("NumParams = %d, want %d", NumParams(m), want)
	}
	sizes := m.Sizes()
	sizes[0] = 999
	if m.Sizes()[0] == 999 {
		t.Fatal("Sizes must return a copy")
	}
}

func TestMLPTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(rand.New(rand.NewSource(1)), "x", []int{3}, ActTanh, 1)
}

func TestMLPTrainsOnRegression(t *testing.T) {
	// Fit y = sin(3x) on [-1,1]; loss must drop by >5x. This is the
	// end-to-end check that forward, backward and Adam cooperate.
	rng := rand.New(rand.NewSource(4))
	n := 64
	x := tensor.New(n, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		xv := -1 + 2*float64(i)/float64(n-1)
		x.Data[i] = xv
		y.Data[i] = math.Sin(3 * xv)
	}
	m := NewMLP(rng, "reg", []int{1, 32, 1}, ActTanh, 1.0)
	opt := NewAdam(m, 1e-2)
	loss := func() float64 {
		tape := autograd.NewTape()
		pred := m.Forward(tape, tape.Const(x))
		l := autograd.Mean(autograd.Square(autograd.Sub(pred, tape.Const(y))))
		return l.Item()
	}
	initial := loss()
	for it := 0; it < 300; it++ {
		opt.ZeroGrad()
		tape := autograd.NewTape()
		pred := m.Forward(tape, tape.Const(x))
		l := autograd.Mean(autograd.Square(autograd.Sub(pred, tape.Const(y))))
		l.Backward()
		opt.Step()
	}
	final := loss()
	if final > initial/5 {
		t.Fatalf("training did not converge: initial %v final %v", initial, final)
	}
}

func TestSGDMomentumMovesFasterOnQuadratic(t *testing.T) {
	build := func() (*MLP, *tensor.Matrix) {
		rng := rand.New(rand.NewSource(5))
		m := NewMLP(rng, "q", []int{2, 1}, ActNone, 1.0)
		x := tensor.RandNormal(rng, 16, 2, 0, 1)
		return m, x
	}
	run := func(momentum float64) float64 {
		m, x := build()
		opt := NewSGD(m, 1e-2, momentum)
		var last float64
		for it := 0; it < 50; it++ {
			opt.ZeroGrad()
			tape := autograd.NewTape()
			pred := m.Forward(tape, tape.Const(x))
			l := autograd.Mean(autograd.Square(pred))
			l.Backward()
			opt.Step()
			last = l.Item()
		}
		return last
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should accelerate this convex problem")
	}
}

func TestAdamResetClearsState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, "r", []int{2, 2}, ActNone, 1.0)
	opt := NewAdam(m, 1e-3)
	opt.ZeroGrad()
	m.Params()[0].Grad.Fill(1)
	opt.Step()
	opt.Reset()
	if opt.step != 0 {
		t.Fatal("Reset should zero step")
	}
	for _, mm := range opt.m {
		if mm.Norm2() != 0 {
			t.Fatal("Reset should zero first moments")
		}
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMLP(rng, "a", []int{3, 4, 2}, ActTanh, 1.0)
	b := NewMLP(rng, "b", []int{3, 4, 2}, ActTanh, 1.0)
	flat := FlattenParams(a)
	if len(flat) != NumParams(a) {
		t.Fatalf("flat len %d != %d", len(flat), NumParams(a))
	}
	if err := LoadFlatParams(b, flat); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandNormal(rng, 2, 3, 0, 1)
	if !a.Predict(in).ApproxEqual(b.Predict(in), 1e-12) {
		t.Fatal("models disagree after LoadFlatParams")
	}
}

func TestLoadFlatParamsLengthError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, "m", []int{2, 2}, ActNone, 1.0)
	if err := LoadFlatParams(m, make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewMLP(rng, "a", []int{3, 5, 2}, ActTanh, 1.0)
	b := NewMLP(rng, "b", []int{3, 5, 2}, ActTanh, 1.0)
	if err := CopyParams(b, a); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandNormal(rng, 4, 3, 0, 1)
	if !a.Predict(in).ApproxEqual(b.Predict(in), 1e-12) {
		t.Fatal("CopyParams did not synchronize outputs")
	}
	c := NewMLP(rng, "c", []int{3, 4, 2}, ActTanh, 1.0)
	if err := CopyParams(c, a); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewMLP(rng, "a", []int{2, 3, 2}, ActTanh, 1.0)
	c := a.Clone("c")
	in := tensor.RandNormal(rng, 1, 2, 0, 1)
	if !a.Predict(in).ApproxEqual(c.Predict(in), 1e-12) {
		t.Fatal("clone output differs")
	}
	c.Params()[0].Data.Fill(99)
	if a.Params()[0].Data.Data[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, "m", []int{2, 2}, ActNone, 1.0)
	for _, p := range m.Params() {
		p.Grad.Fill(3)
	}
	pre := ClipGradNorm(m, 1.0)
	if pre <= 1.0 {
		t.Fatalf("expected pre-clip norm > 1, got %v", pre)
	}
	post := ClipGradNorm(m, math.Inf(1))
	if math.Abs(post-1.0) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", post)
	}
	// maxNorm <= 0 disables clipping.
	for _, p := range m.Params() {
		p.Grad.Fill(3)
	}
	ClipGradNorm(m, 0)
	if m.Params()[0].Grad.Data[0] != 3 {
		t.Fatal("maxNorm=0 should not clip")
	}
}

func TestCategoricalBasics(t *testing.T) {
	c := NewCategorical([]float64{0, 0, math.Log(2)}, nil)
	p := c.Probs()
	if math.Abs(p[0]+p[1]+p[2]-1) > 1e-12 {
		t.Fatal("probs must sum to 1")
	}
	if math.Abs(p[2]-2*p[0]) > 1e-12 {
		t.Fatalf("logit ratio not respected: %v", p)
	}
	if c.Argmax() != 2 {
		t.Fatal("argmax wrong")
	}
	if math.Abs(c.LogProb(2)-math.Log(p[2])) > 1e-12 {
		t.Fatal("LogProb inconsistent with Prob")
	}
	if math.Abs(c.Prob(1)-p[1]) > 1e-12 {
		t.Fatal("Prob accessor wrong")
	}
}

func TestCategoricalMasking(t *testing.T) {
	c := NewCategorical([]float64{5, 1, 1}, []bool{false, true, true})
	if c.Prob(0) != 0 {
		t.Fatal("masked action must have probability 0")
	}
	if !math.IsInf(c.LogProb(0), -1) {
		t.Fatal("masked action must have -inf log-prob")
	}
	if math.Abs(c.Prob(1)-0.5) > 1e-12 {
		t.Fatalf("remaining mass not renormalized: %v", c.Probs())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if c.Sample(rng) == 0 {
			t.Fatal("sampled a masked action")
		}
	}
}

func TestCategoricalAllMaskedFallsBackUniform(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 3, 4}, []bool{false, false, false, false})
	for i := 0; i < 4; i++ {
		if math.Abs(c.Prob(i)-0.25) > 1e-12 {
			t.Fatalf("expected uniform fallback, got %v", c.Probs())
		}
	}
}

func TestCategoricalSampleFrequencies(t *testing.T) {
	c := NewCategorical([]float64{math.Log(0.7), math.Log(0.2), math.Log(0.1)}, nil)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[c.Sample(rng)]++
	}
	want := []float64{0.7, 0.2, 0.1}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("action %d frequency %v, want ~%v", i, got, w)
		}
	}
}

func TestCategoricalEntropy(t *testing.T) {
	uniform := NewCategorical([]float64{1, 1, 1, 1}, nil)
	if math.Abs(uniform.Entropy()-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy %v, want ln4", uniform.Entropy())
	}
	peaked := NewCategorical([]float64{100, 0, 0, 0}, nil)
	if peaked.Entropy() > 1e-6 {
		t.Fatalf("peaked entropy %v, want ~0", peaked.Entropy())
	}
}

func TestCategoricalFromRow(t *testing.T) {
	logits := tensor.FromRows([][]float64{{0, 0}, {10, 0}})
	c := CategoricalFromRow(logits, 1, nil)
	if c.Argmax() != 0 {
		t.Fatal("row selection wrong")
	}
}

func TestPropCategoricalNormalized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		logits := make([]float64, n)
		mask := make([]bool, n)
		anyAllowed := false
		for i := range logits {
			logits[i] = r.NormFloat64() * 5
			mask[i] = r.Float64() < 0.7
			anyAllowed = anyAllowed || mask[i]
		}
		if !anyAllowed {
			mask[0] = true
		}
		c := NewCategorical(logits, mask)
		sum := 0.0
		for i := 0; i < n; i++ {
			p := c.Prob(i)
			if p < 0 || p > 1 {
				return false
			}
			if !mask[i] && p != 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroGradsClearsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP(rng, "m", []int{2, 3, 2}, ActTanh, 1.0)
	for _, p := range m.Params() {
		p.Grad.Fill(1)
	}
	ZeroGrads(m)
	for _, p := range m.Params() {
		if p.Grad.Norm2() != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}
