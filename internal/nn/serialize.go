package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
)

// zeroRand returns a deterministic RNG for constructions whose random
// values are immediately overwritten.
func zeroRand() *rand.Rand { return rand.New(rand.NewSource(0)) }

// mlpCheckpoint is the on-disk representation of an MLP.
type mlpCheckpoint struct {
	Format     string    `json:"format"`
	Sizes      []int     `json:"sizes"`
	Activation string    `json:"activation"`
	Params     []float64 `json:"params"`
}

const checkpointFormat = "pfrl-dm/mlp/v1"

// Limits on checkpoint-declared architectures. A malformed (or hostile)
// checkpoint must fail fast with an error — never panic inside NewMLP or
// allocate unbounded memory on the say-so of external input.
const (
	// MaxCheckpointDim bounds any single layer width.
	MaxCheckpointDim = 1 << 16
	// MaxCheckpointParams bounds the total parameter count (1M ≈ 8 MB of
	// weights — far above any architecture in this repo).
	MaxCheckpointParams = 1 << 20
)

// CheckSizes validates an externally-declared MLP architecture and returns
// its total parameter count. Deserializers call it before constructing
// anything.
func CheckSizes(sizes []int) (int, error) {
	if len(sizes) < 2 {
		return 0, fmt.Errorf("nn: %d layer sizes, need at least 2", len(sizes))
	}
	for i, s := range sizes {
		if s < 1 || s > MaxCheckpointDim {
			return 0, fmt.Errorf("nn: layer size %d at index %d out of [1, %d]", s, i, MaxCheckpointDim)
		}
	}
	var total int64
	for i := 0; i+1 < len(sizes); i++ {
		total += int64(sizes[i]+1) * int64(sizes[i+1])
	}
	if total > MaxCheckpointParams {
		return 0, fmt.Errorf("nn: architecture declares %d params, cap %d", total, MaxCheckpointParams)
	}
	return int(total), nil
}

// SaveMLP writes the network's architecture and weights as JSON.
func SaveMLP(w io.Writer, m *MLP) error {
	ck := mlpCheckpoint{
		Format:     checkpointFormat,
		Sizes:      m.Sizes(),
		Activation: m.Act.String(),
		Params:     FlattenParams(m),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ck)
}

// LoadMLP reads a checkpoint written by SaveMLP and reconstructs the MLP.
func LoadMLP(r io.Reader) (*MLP, error) {
	var ck mlpCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return nil, fmt.Errorf("nn: unknown checkpoint format %q", ck.Format)
	}
	want, err := CheckSizes(ck.Sizes)
	if err != nil {
		return nil, fmt.Errorf("nn: checkpoint: %w", err)
	}
	if len(ck.Params) != want {
		return nil, fmt.Errorf("nn: checkpoint carries %d params, architecture needs %d", len(ck.Params), want)
	}
	var act Activation
	switch ck.Activation {
	case "tanh":
		act = ActTanh
	case "relu":
		act = ActReLU
	case "none":
		act = ActNone
	default:
		return nil, fmt.Errorf("nn: unknown activation %q", ck.Activation)
	}
	// Initialization is irrelevant: weights are overwritten below. The
	// zero-seeded RNG keeps construction deterministic.
	m := NewMLP(zeroRand(), "loaded", ck.Sizes, act, 1.0)
	if err := LoadFlatParams(m, ck.Params); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveMLPFile writes the checkpoint to path, creating or truncating it.
func SaveMLPFile(path string, m *MLP) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveMLP(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadMLPFile reads a checkpoint from path.
func LoadMLPFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMLP(f)
}
