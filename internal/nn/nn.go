// Package nn provides the small neural-network toolkit used by the PPO
// agents: dense layers, multilayer perceptrons, Adam/SGD optimizers, a
// categorical action distribution, and flat-vector parameter serialization
// (the representation exchanged between federated clients and the server).
package nn

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Parameter couples a trainable matrix with its gradient accumulator.
type Parameter struct {
	Name string
	Data *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParameter wraps data as a named parameter with a zeroed gradient.
func NewParameter(name string, data *tensor.Matrix) *Parameter {
	return &Parameter{Name: name, Data: data, Grad: tensor.New(data.Rows, data.Cols)}
}

// Node registers the parameter on tape as a differentiable leaf whose
// gradient accumulates into p.Grad.
func (p *Parameter) Node(tape *autograd.Tape) *autograd.Value {
	return tape.Param(p.Data, p.Grad)
}

// ZeroGrad clears the accumulated gradient.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// NumElems returns the number of scalar elements in the parameter.
func (p *Parameter) NumElems() int { return len(p.Data.Data) }

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the module's parameters in a stable order.
	Params() []*Parameter
}

// ZeroGrads clears the gradients of every parameter of m.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count of m.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumElems()
	}
	return n
}

// ClipGradNorm rescales all gradients of m so their global L2 norm is at
// most maxNorm, and returns the pre-clipping norm. maxNorm <= 0 disables
// clipping.
func ClipGradNorm(m Module, maxNorm float64) float64 {
	total := 0.0
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range m.Params() {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}

// FlattenParams serializes every parameter of m into one flat vector, in
// Params() order. This is the wire format for federated aggregation.
func FlattenParams(m Module) []float64 {
	out := make([]float64, 0, NumParams(m))
	for _, p := range m.Params() {
		out = append(out, p.Data.Data...)
	}
	return out
}

// LoadFlatParams copies flat back into m's parameters (inverse of
// FlattenParams). It returns an error if the length does not match.
func LoadFlatParams(m Module, flat []float64) error {
	want := NumParams(m)
	if len(flat) != want {
		return fmt.Errorf("nn: LoadFlatParams got %d values, model has %d", len(flat), want)
	}
	off := 0
	for _, p := range m.Params() {
		n := p.NumElems()
		copy(p.Data.Data, flat[off:off+n])
		off += n
	}
	return nil
}

// CopyParams copies the parameter values of src into dst. The two modules
// must have identical parameter shapes in identical order.
func CopyParams(dst, src Module) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: CopyParams parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if !dp[i].Data.SameShape(sp[i].Data) {
			return fmt.Errorf("nn: CopyParams shape mismatch at %d (%s vs %s)", i, dp[i].Name, sp[i].Name)
		}
		dp[i].Data.CopyFrom(sp[i].Data)
	}
	return nil
}
