package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Categorical is a discrete distribution over actions derived from one row
// of logits, with optional action masking (forbidden actions get probability
// zero). It is used at rollout time; the differentiable log-probability for
// training is recomputed on the tape via autograd.LogSoftmaxRows + PickCols.
type Categorical struct {
	probs []float64
	logp  []float64
}

// NewCategorical builds the distribution from logits. mask may be nil; when
// provided, mask[i]==false removes action i. If every action is masked the
// distribution falls back to uniform over all actions (the caller should
// treat that as a modelling bug, but sampling stays well-defined).
func NewCategorical(logits []float64, mask []bool) *Categorical {
	c := &Categorical{}
	c.SetLogits(logits, mask)
	return c
}

// SetLogits rebuilds the distribution in place from logits, reusing the
// receiver's probability and log-probability storage. It is the
// allocation-free counterpart of NewCategorical for rollout hot loops: one
// Categorical per agent, refreshed every step. Semantics (masking,
// all-masked uniform fallback) are identical to NewCategorical.
func (c *Categorical) SetLogits(logits []float64, mask []bool) {
	n := len(logits)
	if cap(c.probs) < n {
		c.probs = make([]float64, n)
		c.logp = make([]float64, n)
	}
	c.probs = c.probs[:n]
	c.logp = c.logp[:n]
	mx := math.Inf(-1)
	anyAllowed := false
	for i, l := range logits {
		if mask == nil || mask[i] {
			anyAllowed = true
			if l > mx {
				mx = l
			}
		}
	}
	if !anyAllowed {
		p := 1.0 / float64(n)
		for i := range c.probs {
			c.probs[i] = p
			c.logp[i] = math.Log(p)
		}
		return
	}
	sum := 0.0
	for i, l := range logits {
		if mask == nil || mask[i] {
			e := math.Exp(l - mx)
			c.probs[i] = e
			sum += e
		} else {
			c.probs[i] = 0 // clear any value left from a previous SetLogits
		}
	}
	lse := mx + math.Log(sum)
	for i, l := range logits {
		if mask == nil || mask[i] {
			c.probs[i] /= sum
			c.logp[i] = l - lse
		} else {
			c.logp[i] = math.Inf(-1)
		}
	}
}

// Sample draws an action index using rng.
func (c *Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	last := 0
	for i, p := range c.probs {
		if p == 0 {
			continue
		}
		acc += p
		last = i
		if u < acc {
			return i
		}
	}
	return last // guard against floating-point shortfall
}

// Argmax returns the most probable action (greedy evaluation).
func (c *Categorical) Argmax() int {
	best, bestP := 0, -1.0
	for i, p := range c.probs {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// LogProb returns log P(action).
func (c *Categorical) LogProb(action int) float64 { return c.logp[action] }

// Prob returns P(action).
func (c *Categorical) Prob(action int) float64 { return c.probs[action] }

// Entropy returns the Shannon entropy of the distribution in nats.
func (c *Categorical) Entropy() float64 {
	h := 0.0
	for _, p := range c.probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Probs returns a copy of the probability vector.
func (c *Categorical) Probs() []float64 { return append([]float64(nil), c.probs...) }

// CategoricalFromRow is a convenience wrapper building the distribution from
// row r of a logits matrix.
func CategoricalFromRow(logits *tensor.Matrix, r int, mask []bool) *Categorical {
	return NewCategorical(logits.Row(r), mask)
}
