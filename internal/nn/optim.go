package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer advances model parameters using their accumulated gradients.
type Optimizer interface {
	// Step applies one update from the current gradients, consuming them:
	// all gradients are zero after Step, so the next backward pass can
	// accumulate without a separate ZeroGrad sweep.
	Step()
	// ZeroGrad clears all gradients (for discarding a backward pass without
	// applying it; Step already leaves gradients clear).
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*Parameter
	LR       float64
	Momentum float64
	velocity []*tensor.Matrix
}

// NewSGD returns an SGD optimizer over m's parameters.
func NewSGD(m Module, lr, momentum float64) *SGD {
	ps := m.Params()
	vel := make([]*tensor.Matrix, len(ps))
	for i, p := range ps {
		vel[i] = tensor.New(p.Data.Rows, p.Data.Cols)
	}
	return &SGD{params: ps, LR: lr, Momentum: momentum, velocity: vel}
}

// Step applies one SGD update and clears the consumed gradients.
func (o *SGD) Step() {
	for i, p := range o.params {
		v := o.velocity[i]
		if o.Momentum != 0 {
			v.ScaleInPlace(o.Momentum).AddScaledInPlace(p.Grad, 1)
			p.Data.AddScaledInPlace(v, -o.LR)
		} else {
			p.Data.AddScaledInPlace(p.Grad, -o.LR)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad clears all gradients.
func (o *SGD) ZeroGrad() {
	for _, p := range o.params {
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015) with bias
// correction — the optimizer used for both the actor and critic networks in
// the paper (actor lr 3e-4, critic lr 1e-4).
type Adam struct {
	params []*Parameter
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64

	step int
	m    []*tensor.Matrix
	v    []*tensor.Matrix
}

// NewAdam returns an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(mod Module, lr float64) *Adam {
	ps := mod.Params()
	a := &Adam{params: ps, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Matrix, len(ps))
	a.v = make([]*tensor.Matrix, len(ps))
	for i, p := range ps {
		a.m[i] = tensor.New(p.Data.Rows, p.Data.Cols)
		a.v[i] = tensor.New(p.Data.Rows, p.Data.Cols)
	}
	return a
}

// Step applies one Adam update from current gradients and clears them in
// the same pass (tensor.AdamUpdate consumes the gradient, saving the
// per-minibatch ZeroGrads sweep). The element-wise rule lives in
// tensor.AdamUpdate so it can use the SIMD fast path; the update is bitwise
// identical to the historical per-element loop here.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		tensor.AdamUpdate(p.Data.Data, p.Grad.Data, a.m[i].Data, a.v[i].Data, a.LR, a.Beta1, a.Beta2, a.Eps, bc1, bc2)
	}
}

// ZeroGrad clears all gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// Reset clears the optimizer's moment estimates and step count, e.g. after
// parameters are overwritten by a federated aggregation round.
func (a *Adam) Reset() {
	a.step = 0
	for i := range a.m {
		a.m[i].Zero()
		a.v[i].Zero()
	}
}
