package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Activation selects the nonlinearity used between MLP layers.
type Activation int

const (
	// ActTanh is the paper's default hidden activation.
	ActTanh Activation = iota
	// ActReLU is provided for ablations.
	ActReLU
	// ActNone applies no nonlinearity (identity).
	ActNone
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case ActTanh:
		return "tanh"
	case ActReLU:
		return "relu"
	case ActNone:
		return "none"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(v *autograd.Value) *autograd.Value {
	switch a {
	case ActTanh:
		return autograd.Tanh(v)
	case ActReLU:
		return autograd.ReLU(v)
	case ActNone:
		return v
	default:
		panic("nn: unknown activation " + a.String())
	}
}

// Linear is a dense layer computing x·W + b, with W stored In x Out.
type Linear struct {
	W *Parameter
	B *Parameter
}

// NewLinear returns a dense in→out layer. Weights use orthogonal
// initialization scaled by gain (the standard PPO initialization); biases
// start at zero.
func NewLinear(rng *rand.Rand, name string, in, out int, gain float64) *Linear {
	w := tensor.OrthogonalScaled(rng, out, in, gain).T() // stored In x Out for x·W
	return &Linear{
		W: NewParameter(name+".W", w),
		B: NewParameter(name+".B", tensor.New(1, out)),
	}
}

// Forward computes x·W + b on the tape.
func (l *Linear) Forward(tape *autograd.Tape, x *autograd.Value) *autograd.Value {
	return autograd.AddRow(autograd.MatMul(x, l.W.Node(tape)), l.B.Node(tape))
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Parameter { return []*Parameter{l.W, l.B} }

// MLP is a multilayer perceptron: Linear → act → … → Linear. The final
// layer has no activation (raw logits / values).
type MLP struct {
	Layers []*Linear
	Act    Activation
	sizes  []int
	// params caches the flattened Params() result: the optimizer helpers
	// (ZeroGrads, ClipGradNorm, Proximal.Apply) call it on every minibatch,
	// and rebuilding the slice each time shows up in the update hot loop.
	// Layers must not change after construction.
	params []*Parameter
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes=[538,64,9]
// builds 538→64→9 with one hidden layer. outGain scales the final layer's
// orthogonal initialization (PPO uses small policy-head gains, e.g. 0.01).
func NewMLP(rng *rand.Rand, name string, sizes []int, act Activation, outGain float64) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{Act: act, sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		gain := 1.0
		if i+2 == len(sizes) {
			gain = outGain
		}
		m.Layers = append(m.Layers,
			NewLinear(rng, fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], gain))
	}
	return m
}

// Forward runs the network on the tape. x must be N x sizes[0].
func (m *MLP) Forward(tape *autograd.Tape, x *autograd.Value) *autograd.Value {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(tape, h)
		if i+1 < len(m.Layers) {
			h = m.Act.apply(h)
		}
	}
	return h
}

// Infer runs a gradient-free forward pass — the rollout fast path. No tape
// is built and no graph is recorded; intermediate activations come from the
// shared tensor pool and are returned before Infer exits, so at steady state
// the pass allocates nothing. The output is written into dst (which must be
// x.Rows x output-size) and returned; a nil dst is allocated fresh.
//
// Infer computes exactly the same kernels in the same order as Forward, so
// its outputs are bitwise identical to the tape-based pass (asserted in
// tests). Distinct MLPs may Infer concurrently (the pool is thread-safe),
// but a single MLP must not be shared across goroutines mid-call with a
// shared dst.
func (m *MLP) Infer(dst *tensor.Matrix, x *tensor.Matrix) *tensor.Matrix {
	outDim := m.sizes[len(m.sizes)-1]
	if dst == nil {
		dst = tensor.New(x.Rows, outDim)
	}
	cur := x
	var scratch *tensor.Matrix // pooled intermediate owned by this call
	for i, l := range m.Layers {
		last := i+1 == len(m.Layers)
		var out *tensor.Matrix
		if last {
			out = dst
		} else {
			out = tensor.Get(x.Rows, m.sizes[i+1])
		}
		cur.MatMulInto(l.W.Data, out)
		out.AddRowBroadcastInto(l.B.Data, out)
		if !last {
			switch m.Act {
			case ActTanh:
				out.ApplyInto(math.Tanh, out)
			case ActReLU:
				out.ApplyInto(func(v float64) float64 {
					if v > 0 {
						return v
					}
					return 0
				}, out)
			case ActNone:
				// identity
			default:
				panic("nn: unknown activation " + m.Act.String())
			}
		}
		if scratch != nil {
			tensor.Put(scratch)
		}
		if !last {
			scratch = out
		}
		cur = out
	}
	return dst
}

// Predict runs a gradient-free forward pass and returns a freshly allocated
// result. It is a convenience wrapper around Infer for callers that keep the
// output; hot paths should pass their own reusable dst to Infer instead.
func (m *MLP) Predict(x *tensor.Matrix) *tensor.Matrix {
	return m.Infer(nil, x)
}

// Params returns all layer parameters in order.
func (m *MLP) Params() []*Parameter {
	if m.params == nil {
		for _, l := range m.Layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// Sizes returns a copy of the layer size list.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// CloneArchitecture returns a new MLP with identical shape and freshly
// initialized weights drawn from rng.
func (m *MLP) CloneArchitecture(rng *rand.Rand, name string) *MLP {
	outGain := 1.0 // the gain only affects initialization; any value is valid here
	return NewMLP(rng, name, m.sizes, m.Act, outGain)
}

// Clone returns a deep copy of the MLP (same architecture and weights).
func (m *MLP) Clone(name string) *MLP {
	rng := rand.New(rand.NewSource(0))
	c := NewMLP(rng, name, m.sizes, m.Act, 1.0)
	if err := CopyParams(c, m); err != nil {
		panic("nn: Clone: " + err.Error())
	}
	return c
}
