package fednet

import (
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"testing"

	"repro/internal/fed"
)

// startAsyncServer boots an async-mode server (staleness unbounded unless
// bound given) and returns it with its address.
func startAsyncServer(t *testing.T, n, k, bound, buffer int, agg fed.Aggregator, initial fed.Payload) (*Server, string) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Clients: n, K: k, Seed: 42, InitialGlobal: initial, Aggregator: agg,
		Async: true, StalenessBound: bound, Buffer: buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

// rawJoin registers a bare RPC connection as the next client slot.
func rawJoin(t *testing.T, conn *rpc.Client) JoinReply {
	t.Helper()
	var reply JoinReply
	if err := conn.Call("Federation.Join", JoinArgs{Name: "raw"}, &reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestAsyncServerDedupesRetransmits pins the (client, seq) dedup at the RPC
// layer: a duplicated Sync — the wire-level retransmit a client sends after
// a lost reply — must be answered idempotently and must not re-mix the
// delta into the aggregate.
func TestAsyncServerDedupesRetransmits(t *testing.T) {
	initial := fed.Payload{0, 0}
	srv, addr := startAsyncServer(t, 2, 2, -1, 2, fed.FedAvg{}, initial)

	conns := make([]*rpc.Client, 2)
	for i := range conns {
		conn, err := rpc.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if reply := rawJoin(t, conn); !reply.Async {
			t.Fatal("join did not report async mode")
		}
		conns[i] = conn
	}

	// Client 0 submits seq 1, then retransmits it (duplicated/delayed ACK).
	var first, dup SyncReply
	args := SyncArgs{ClientID: 0, Round: 1, Base: 0, Frame: testFrame(fed.Payload{2, 4})}
	if err := conns[0].Call("Federation.Sync", args, &first); err != nil {
		t.Fatal(err)
	}
	if err := conns[0].Call("Federation.Sync", args, &dup); err != nil {
		t.Fatalf("retransmit errored instead of being answered idempotently: %v", err)
	}

	// Client 1's submission fills the 2-buffer and commits. If the
	// retransmit had been buffered, the commit would have fired early with
	// two copies of client 0's delta.
	var reply SyncReply
	if err := conns[1].Call("Federation.Sync",
		SyncArgs{ClientID: 1, Round: 1, Base: 0, Frame: testFrame(fed.Payload{4, 8})}, &reply); err != nil {
		t.Fatal(err)
	}
	if got := srv.Global(); got[0] != 3 || got[1] != 6 {
		t.Fatalf("global %v, want the dedup'd mean [3 6]", got)
	}
	reports := srv.Reports()
	if len(reports) != 1 {
		t.Fatalf("%d rounds committed, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Arrived != 2 || rep.Participants != 2 || rep.DupDrops != 1 {
		t.Fatalf("commit report %+v, want 2 arrivals and 1 dup drop", rep)
	}
}

// dropOnceDownload fails the first Download after being armed, forcing the
// real client retry path to retransmit its Sync with the same sequence
// number. It stays disarmed through Dial so the join-time install succeeds.
type dropOnceDownload struct {
	fed.Transport
	mu    sync.Mutex
	armed bool
	left  int
}

func (d *dropOnceDownload) arm(n int) {
	d.mu.Lock()
	d.armed, d.left = true, n
	d.mu.Unlock()
}

func (d *dropOnceDownload) Download(c *fed.Client, p fed.Payload) error {
	d.mu.Lock()
	drop := d.armed && d.left > 0
	if drop {
		d.left--
	}
	d.mu.Unlock()
	if drop {
		return fmt.Errorf("%w: download dropped (test)", fed.ErrInjectedFault)
	}
	return d.Transport.Download(c, p)
}

// TestAsyncClientRetryIsIdempotent drives the dedup through the real client
// retry machinery: client 0's first Sync succeeds server-side but the local
// install fails (a lost reply, injected via the fault-transport error), so
// syncRound retries the whole exchange — same seq — and the server must
// answer without double-applying the delta.
func TestAsyncClientRetryIsIdempotent(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	locals := []*fed.Client{newLocalClient(t, 0, 5), newLocalClient(t, 1, 6)}
	initial := mustUpload(t, transport, locals[0])
	srv, addr := startAsyncServer(t, 2, 2, -1, 2, fed.FedAvg{}, initial)

	faulty := &dropOnceDownload{Transport: transport}
	rc0, err := DialOptions(addr, locals[0], faulty, Options{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rc0.Close()
	faulty.arm(1)
	rc1, err := Dial(addr, locals[1], transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rc1.Close()

	// rc0's exchange: Sync accepted (buffered), Download fails, retry
	// resends seq 1 → duplicate → idempotent reply → install succeeds.
	if err := rc0.RunRounds(1, 1); err != nil {
		t.Fatal(err)
	}
	if rc0.Stats().Retries != 1 {
		t.Fatalf("retries %d, want exactly 1", rc0.Stats().Retries)
	}
	// rc1 fills the buffer and commits.
	if err := rc1.RunRounds(1, 1); err != nil {
		t.Fatal(err)
	}
	reports := srv.Reports()
	if len(reports) != 1 {
		t.Fatalf("%d rounds committed, want 1 (the retransmit must not advance the buffer)", len(reports))
	}
	if rep := reports[0]; rep.Arrived != 2 || rep.DupDrops != 1 {
		t.Fatalf("commit report %+v, want 2 arrivals and 1 dup drop", rep)
	}
}

// TestAsyncFetchDeliversCommittedResults pins the pull half of the async
// protocol: a client that submitted before a commit collects its committed
// personalized payload via Fetch on its next contact, exactly once.
func TestAsyncFetchDeliversCommittedResults(t *testing.T) {
	initial := fed.Payload{0, 0}
	srv, addr := startAsyncServer(t, 2, 2, -1, 2, fed.FedAvg{}, initial)

	conns := make([]*rpc.Client, 2)
	for i := range conns {
		conn, err := rpc.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		rawJoin(t, conn)
		conns[i] = conn
	}

	var r0, r1 SyncReply
	if err := conns[0].Call("Federation.Sync",
		SyncArgs{ClientID: 0, Round: 1, Base: 0, Frame: testFrame(fed.Payload{2, 4})}, &r0); err != nil {
		t.Fatal(err)
	}
	// Pre-commit reply: current global, round still 0.
	if r0.Participant || r0.Round != 0 {
		t.Fatalf("pre-commit reply %+v", r0)
	}
	if err := conns[1].Call("Federation.Sync",
		SyncArgs{ClientID: 1, Round: 1, Base: 0, Frame: testFrame(fed.Payload{4, 8})}, &r1); err != nil {
		t.Fatal(err)
	}
	// Trigger client: personalized payload in the reply, round advanced.
	if !r1.Participant || r1.Round != 1 {
		t.Fatalf("trigger reply %+v", r1)
	}

	// Client 0 fetches its retained personalized payload.
	var f0 FetchReply
	if err := conns[0].Call("Federation.Fetch", FetchArgs{ClientID: 0, Base: 0}, &f0); err != nil {
		t.Fatal(err)
	}
	if !f0.Has || !f0.Participant || f0.Round != 1 {
		t.Fatalf("fetch reply %+v, want retained personalized payload", f0)
	}
	// A second fetch from the advanced base: nothing new.
	var f1 FetchReply
	if err := conns[0].Call("Federation.Fetch", FetchArgs{ClientID: 0, Base: f0.Round}, &f1); err != nil {
		t.Fatal(err)
	}
	if f1.Has {
		t.Fatalf("fetch after install returned new state: %+v", f1)
	}
	_ = srv
}

// TestAsyncStaleSubmissionDropped pins the staleness cap end to end over
// RPC: with bound 0, a delta based two rounds back is dropped into the next
// report, not mixed.
func TestAsyncStaleSubmissionDropped(t *testing.T) {
	initial := fed.Payload{0}
	srv, addr := startAsyncServer(t, 2, 2, 0, 1, fed.FedAvg{}, initial)

	conns := make([]*rpc.Client, 2)
	for i := range conns {
		conn, err := rpc.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		rawJoin(t, conn)
		conns[i] = conn
	}

	var reply SyncReply
	// Client 0 commits rounds 1 and 2 (buffer 1: every accepted submission
	// commits).
	if err := conns[0].Call("Federation.Sync",
		SyncArgs{ClientID: 0, Round: 1, Base: 0, Frame: testFrame(fed.Payload{1})}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := conns[0].Call("Federation.Sync",
		SyncArgs{ClientID: 0, Round: 2, Base: 1, Frame: testFrame(fed.Payload{2})}, &reply); err != nil {
		t.Fatal(err)
	}
	// Client 1 is still on base 0: two rounds stale, dropped under bound 0.
	if err := conns[1].Call("Federation.Sync",
		SyncArgs{ClientID: 1, Round: 1, Base: 0, Frame: testFrame(fed.Payload{9})}, &reply); err != nil {
		t.Fatal(err)
	}
	if g := srv.Global(); g[0] != 2 {
		t.Fatalf("stale delta leaked into the global: %v", g)
	}
	// The drop surfaces in the next committed report.
	if err := conns[0].Call("Federation.Sync",
		SyncArgs{ClientID: 0, Round: 3, Base: 2, Frame: testFrame(fed.Payload{3})}, &reply); err != nil {
		t.Fatal(err)
	}
	reports := srv.Reports()
	if last := reports[len(reports)-1]; last.StaleDrops != 1 {
		t.Fatalf("stale drop not reported: %+v", last)
	}
}

// TestFetchRejectedOnSyncServer pins the protocol boundary: Fetch is an
// async-only RPC.
func TestFetchRejectedOnSyncServer(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	local := newLocalClient(t, 0, 9)
	initial := mustUpload(t, transport, local)
	_, addr := startServer(t, 1, 1, fed.FedAvg{}, initial)
	conn, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawJoin(t, conn)
	var reply FetchReply
	if err := conn.Call("Federation.Fetch", FetchArgs{ClientID: 0}, &reply); err == nil {
		t.Fatal("sync server accepted an async Fetch")
	}
	var srvErr rpc.ServerError
	if cerr := conn.Call("Federation.Fetch", FetchArgs{ClientID: 0}, &reply); !errors.As(cerr, &srvErr) {
		t.Fatalf("unexpected error shape: %v", cerr)
	}
}
