package fednet

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/rl"
	"repro/internal/workload"
)

func testConfig() cloudsim.Config {
	return cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
}

func newLocalClient(t *testing.T, id int, seed int64) *fed.Client {
	t.Helper()
	cfg := testConfig()
	rng := rand.New(rand.NewSource(seed))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, 12), cfg.VMs)
	agent := rl.NewDualCriticPPO(
		rl.DefaultConfig(cloudsim.StateDim(cfg), cfg.PadVMs+1),
		rand.New(rand.NewSource(seed*31+7)))
	c, err := fed.NewClient(id, "remote", cfg, tasks, agent)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustUpload extracts a payload, failing the test on error.
func mustUpload(t *testing.T, tr fed.Transport, c *fed.Client) fed.Payload {
	t.Helper()
	p, err := tr.Upload(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testFrame wraps a payload in an identity wire frame, as a raw-RPC test
// client would before Sync.
func testFrame(p fed.Payload) []byte {
	return append([]byte(nil), fedcore.NewEncoder(fedcore.CodecConfig{}).Encode(p)...)
}

// testDecode unwraps a downlink frame, failing the test on a bad frame.
func testDecode(t *testing.T, frame []byte) fed.Payload {
	t.Helper()
	p, _, err := fedcore.DecodeFrame(frame, nil, nil)
	if err != nil {
		t.Fatalf("bad downlink frame: %v", err)
	}
	return p
}

// startServer boots a server for n clients with the given aggregator and
// returns its address.
func startServer(t *testing.T, n, k int, agg fed.Aggregator, initial fed.Payload) (*Server, string) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Clients: n, K: k, Seed: 42, InitialGlobal: initial, Aggregator: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("empty config should error")
	}
	if _, err := NewServer(ServerConfig{Clients: 1, Aggregator: fed.FedAvg{}}); err == nil {
		t.Fatal("missing initial global should error")
	}
	if _, err := NewServer(ServerConfig{Clients: 1, InitialGlobal: fed.Payload{1}}); err == nil {
		t.Fatal("missing aggregator should error")
	}
}

func TestNetworkedFederationEndToEnd(t *testing.T) {
	const n = 3
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 5)
	initial := mustUpload(t, transport, ref)
	srv, addr := startServer(t, n, n, fed.FedAvg{}, initial)

	var wg sync.WaitGroup
	clients := make([]*RemoteClient, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		local := newLocalClient(t, i, int64(i)+10)
		rc, err := Dial(addr, local, transport)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = rc
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rc.RunRounds(2, 1)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if srv.Rounds() != 2 {
		t.Fatalf("server rounds %d, want 2", srv.Rounds())
	}
	// Under full-participation FedAvg every client ends on the global model.
	global := srv.Global()
	for i, rc := range clients {
		got := mustUpload(t, transport, rc.Local)
		for d := range global {
			if got[d] != global[d] {
				t.Fatalf("client %d out of sync with server global", i)
			}
		}
		if len(rc.Local.Rewards) != 2 {
			t.Fatalf("client %d trained %d episodes", i, len(rc.Local.Rewards))
		}
		rc.Close()
	}
}

func TestNetworkedMatchesInProcessRound(t *testing.T) {
	// One full-participation round over TCP must produce the same global
	// model as fed.Federation given identical clients. This pins the
	// protocol's determinism.
	const n = 3
	transport := fed.PublicCriticTransport{}

	mkClients := func() []*fed.Client {
		out := make([]*fed.Client, n)
		for i := range out {
			out[i] = newLocalClient(t, i, int64(i)+40)
		}
		return out
	}

	// In-process reference.
	inproc := mkClients()
	f, err := fed.New(inproc, transport, fed.FedAvg{}, fed.Options{K: n, CommEvery: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}

	// Networked run with identical clients and initial global.
	netClients := mkClients()
	initial := mustUpload(t, transport, netClients[0])
	srv, addr := startServer(t, n, n, fed.FedAvg{}, initial)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		rc, err := Dial(addr, netClients[i], transport)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rc.RunRounds(1, 1); err != nil {
				t.Error(err)
			}
			rc.Close()
		}()
	}
	wg.Wait()

	got := srv.Global()
	want := f.Global
	if len(got) != len(want) {
		t.Fatalf("global sizes differ: %d vs %d", len(got), len(want))
	}
	for d := range want {
		if got[d] != want[d] {
			t.Fatalf("networked global diverges from in-process at %d: %v vs %v", d, got[d], want[d])
		}
	}
}

func TestPartialParticipationOverNetwork(t *testing.T) {
	const n, k = 4, 2
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 60)
	srv, addr := startServer(t, n, k, fed.NewAttention(3), mustUpload(t, transport, ref))

	var wg sync.WaitGroup
	participants := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		local := newLocalClient(t, i, int64(i)+60)
		rc, err := Dial(addr, local, transport)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local.TrainEpisodes(1)
			var reply SyncReply
			args := SyncArgs{ClientID: rc.ID(), Round: 0, Frame: testFrame(mustUpload(t, transport, local))}
			if err := rc.rpc.Call("Federation.Sync", args, &reply); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if reply.Participant {
				participants++
			}
			mu.Unlock()
			rc.Close()
		}(i)
	}
	wg.Wait()
	if participants != k {
		t.Fatalf("%d participants, want %d", participants, k)
	}
	if srv.Rounds() != 1 {
		t.Fatalf("rounds %d", srv.Rounds())
	}
}

func TestJoinRejectsOverflow(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 70)
	_, addr := startServer(t, 1, 1, fed.FedAvg{}, mustUpload(t, transport, ref))
	c1 := newLocalClient(t, 0, 71)
	rc, err := Dial(addr, c1, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	c2 := newLocalClient(t, 1, 72)
	if _, err := Dial(addr, c2, transport); err == nil {
		t.Fatal("expected federation-full error")
	}
}

func TestSyncRejectsBadRequests(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 80)
	_, addr := startServer(t, 2, 2, fed.FedAvg{}, mustUpload(t, transport, ref))
	local := newLocalClient(t, 0, 81)
	rc, err := Dial(addr, local, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var reply SyncReply
	// Wrong round.
	err = rc.rpc.Call("Federation.Sync", SyncArgs{ClientID: rc.ID(), Round: 7}, &reply)
	if err == nil {
		t.Fatal("expected round-mismatch error")
	}
	// Unknown client.
	err = rc.rpc.Call("Federation.Sync", SyncArgs{ClientID: 55, Round: 0}, &reply)
	if err == nil {
		t.Fatal("expected unknown-client error")
	}
}
