package fednet

import (
	"fmt"
	"net/rpc"

	"repro/internal/fed"
)

// RemoteClient trains a local fed.Client and synchronizes it with a fednet
// server over TCP. Only transport payloads cross the wire; workload data
// and private networks never leave the process.
type RemoteClient struct {
	Local     *fed.Client
	Transport fed.Transport

	id  int
	rpc *rpc.Client
}

// Dial connects to the server, registers, and installs the initial global
// model into the local client.
func Dial(addr string, local *fed.Client, transport fed.Transport) (*RemoteClient, error) {
	conn, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	var reply JoinReply
	if err := conn.Call("Federation.Join", JoinArgs{Name: local.Name}, &reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fednet: join: %w", err)
	}
	if err := transport.Download(local, reply.Global); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fednet: install initial global: %w", err)
	}
	return &RemoteClient{Local: local, Transport: transport, id: reply.ClientID, rpc: conn}, nil
}

// ID returns the server-assigned client id.
func (c *RemoteClient) ID() int { return c.id }

// RunRounds performs the given number of (train-segment, sync) rounds:
// commEvery local episodes, then one blocking Sync exchanging only the
// transport payload.
func (c *RemoteClient) RunRounds(rounds, commEvery int) error {
	for r := 0; r < rounds; r++ {
		c.Local.TrainEpisodes(commEvery)
		var reply SyncReply
		args := SyncArgs{ClientID: c.id, Round: r, Upload: c.Transport.Upload(c.Local)}
		if err := c.rpc.Call("Federation.Sync", args, &reply); err != nil {
			return fmt.Errorf("fednet: sync round %d: %w", r, err)
		}
		if err := c.Transport.Download(c.Local, reply.Payload); err != nil {
			return fmt.Errorf("fednet: install round %d payload: %w", r, err)
		}
	}
	return nil
}

// Close releases the connection.
func (c *RemoteClient) Close() error { return c.rpc.Close() }
