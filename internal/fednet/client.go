package fednet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"time"

	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/obs"
)

// ErrRPCTimeout marks a call that exceeded Options.CallTimeout. The
// connection is torn down and redialed before the next attempt.
var ErrRPCTimeout = errors.New("fednet: rpc deadline exceeded")

// Options tunes a RemoteClient's fault tolerance. The zero value is the
// strict protocol: no deadlines and no retries, every error fatal.
type Options struct {
	// CallTimeout bounds each RPC round trip, 0 means none. Sync blocks on
	// the server's round barrier, so set this above the server's
	// RoundTimeout plus the slowest client's training segment.
	CallTimeout time.Duration
	// Retries is how many times a failed step is re-attempted (so a step
	// makes at most Retries+1 attempts).
	Retries int
	// RetryBase / RetryMax bound the exponential backoff between attempts
	// (defaults 50ms / 2s). Each delay is scaled by a jitter factor in
	// [0.5, 1) drawn from the Seed-ed RNG, so a retry schedule is
	// deterministic for a given seed.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the backoff jitter.
	Seed int64
	// Rejoin reclaims slot RejoinID instead of registering a new client —
	// the restart path: the rejoined client re-downloads the current
	// global payload and resumes at the server's current round.
	Rejoin   bool
	RejoinID int
}

// ClientStats counts the fault-tolerance events a client absorbed.
type ClientStats struct {
	// Retries is the number of re-attempted steps (any cause).
	Retries int
	// Timeouts is how many RPCs exceeded CallTimeout.
	Timeouts int
	// Resyncs is how many rounds were missed and recovered via State.
	Resyncs int
}

// RemoteClient trains a local fed.Client and synchronizes it with a fednet
// server over TCP. Only transport payloads cross the wire; workload data
// and private networks never leave the process.
type RemoteClient struct {
	Local     *fed.Client
	Transport fed.Transport

	addr  string
	opts  Options
	id    int
	round int // sync mode: next server round; async mode: local submission seq
	async bool
	base  int // async mode: the server round whose global we last installed
	rpc   *rpc.Client
	rng   *rand.Rand
	stats ClientStats

	// Wire codec state: the uplink encoder (configured from the server's
	// JoinReply — delta reference and error-feedback residual live here) and
	// the pooled downlink decode buffer.
	enc *fedcore.Encoder
	dec fed.Payload
}

// Dial connects to the server, registers, and installs the initial global
// model into the local client, with the strict zero Options.
func Dial(addr string, local *fed.Client, transport fed.Transport) (*RemoteClient, error) {
	return DialOptions(addr, local, transport, Options{})
}

// DialOptions is Dial with explicit fault-tolerance options.
func DialOptions(addr string, local *fed.Client, transport fed.Transport, opts Options) (*RemoteClient, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	c := &RemoteClient{
		Local:     local,
		Transport: transport,
		addr:      addr,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
	}
	conn, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	c.rpc = conn
	var reply JoinReply
	args := JoinArgs{Name: local.Name, Rejoin: opts.Rejoin, ClientID: opts.RejoinID}
	if err := c.call("Federation.Join", args, &reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fednet: join: %w", err)
	}
	if err := transport.Download(local, reply.Global); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fednet: install initial global: %w", err)
	}
	c.enc = fedcore.NewEncoder(reply.Codec)
	c.id = reply.ClientID
	if reply.Async {
		// Async protocol: c.round becomes the local submission sequence
		// (monotone, never adopted from the server), and c.base tracks the
		// round whose global we installed — the staleness anchor.
		c.async = true
		c.base = reply.Round
	} else {
		c.round = reply.Round
	}
	return c, nil
}

// ID returns the server-assigned client id.
func (c *RemoteClient) ID() int { return c.id }

// Round returns the next server round this client will sync.
func (c *RemoteClient) Round() int { return c.round }

// Stats returns the client's fault-tolerance counters.
func (c *RemoteClient) Stats() ClientStats { return c.stats }

// call issues one RPC, bounded by CallTimeout when set. On timeout the
// connection is closed (a stale late reply must not leak into a future
// call's budget) and the caller is expected to reconnect before retrying.
func (c *RemoteClient) call(method string, args, reply any) error {
	if c.opts.CallTimeout <= 0 {
		return c.rpc.Call(method, args, reply)
	}
	inflight := c.rpc.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(c.opts.CallTimeout)
	defer t.Stop()
	select {
	case done := <-inflight.Done:
		return done.Error
	case <-t.C:
		c.stats.Timeouts++
		mNetTimeouts.Inc()
		if obs.Active() {
			obs.Emit(obs.E("rpc_timeout").At(c.id, c.round, -1).
				S("method", method).
				F("timeout_seconds", c.opts.CallTimeout.Seconds()))
		}
		c.rpc.Close()
		return fmt.Errorf("%w: %s after %v", ErrRPCTimeout, method, c.opts.CallTimeout)
	}
}

// reconnect tears down the connection and dials a fresh one.
func (c *RemoteClient) reconnect() error {
	c.rpc.Close()
	conn, err := rpc.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("fednet: redial %s: %w", c.addr, err)
	}
	c.rpc = conn
	return nil
}

// retryable classifies an error: injected faults are retried in place,
// connection-level failures and timeouts are retried over a fresh
// connection, a corrupt-length upload is retried with a rebuilt payload,
// and everything else — a misconfigured transport, a server protocol
// error — is fatal.
func retryable(err error) (retry, redial bool) {
	switch {
	case err == nil:
		return false, false
	case errors.Is(err, fed.ErrInjectedFault):
		return true, false
	case errors.Is(err, ErrRPCTimeout), errors.Is(err, rpc.ErrShutdown),
		errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return true, true
	}
	var srvErr rpc.ServerError
	if errors.As(err, &srvErr) {
		msg := err.Error()
		return strings.Contains(msg, msgBadUpload) || strings.Contains(msg, msgRefMismatch), false
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true, true
	}
	return false, false
}

// roundPassed reports whether the server aggregated this round without us.
func roundPassed(err error) bool {
	return err != nil && strings.Contains(err.Error(), msgRoundPassed)
}

// refMismatch reports whether the server rejected a delta frame because the
// two ends disagree on the reference (a lost reply); the recovery is to
// clear the local reference and retry absolutely.
func refMismatch(err error) bool {
	return err != nil && strings.Contains(err.Error(), msgRefMismatch)
}

// backoff sleeps for an exponentially growing, jittered delay before retry
// attempt n (0-based).
func (c *RemoteClient) backoff(n int) {
	d := c.opts.RetryBase << n
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	jitter := 0.5 + 0.5*c.rng.Float64()
	time.Sleep(time.Duration(float64(d) * jitter))
}

// RunRounds performs the given number of (train-segment, sync) rounds:
// commEvery local episodes, then one Sync exchanging only the transport
// payload — blocking on the barrier in sync mode, returning immediately in
// async mode. A sync-mode round the server closed without us counts as
// done: the client adopts the current global model and moves on, matching
// the partial-participation regime. In async mode each segment starts with
// a Fetch, installing whatever the fleet committed while we trained.
func (c *RemoteClient) RunRounds(rounds, commEvery int) error {
	for r := 0; r < rounds; r++ {
		if c.async {
			if _, err := c.Fetch(); err != nil {
				return fmt.Errorf("fednet: fetch before round %d: %w", c.round, err)
			}
		}
		c.Local.TrainEpisodes(commEvery)
		if err := c.syncRound(); err != nil {
			return fmt.Errorf("fednet: sync round %d: %w", c.round, err)
		}
	}
	return nil
}

// syncRound uploads, waits out the barrier, and installs the returned
// payload, retrying transient failures up to Options.Retries times.
func (c *RemoteClient) syncRound() error {
	for attempt := 0; ; attempt++ {
		err := c.syncOnce()
		if err == nil {
			return nil
		}
		if roundPassed(err) {
			return c.resync()
		}
		if refMismatch(err) {
			c.enc.ClearRef()
		}
		retry, redial := retryable(err)
		if !retry {
			return err
		}
		if attempt >= c.opts.Retries {
			return fmt.Errorf("giving up after %d attempts: %w", attempt+1, err)
		}
		c.stats.Retries++
		c.noteRetry("sync", attempt, err)
		c.backoff(attempt)
		if redial {
			if rerr := c.reconnect(); rerr != nil {
				// The server may still be down; the next attempt redials.
				continue
			}
		}
	}
}

// syncOnce is a single upload→exchange→download attempt. In sync mode the
// exchange blocks on the server's round barrier; in async mode it returns
// immediately with whatever payload the server has for us. Either way
// c.round only advances on full success, so a retry resends the same round
// (sync: the barrier check; async: the dedup seq — the server answers a
// retransmit idempotently).
func (c *RemoteClient) syncOnce() error {
	upload, err := c.Transport.Upload(c.Local)
	if err != nil {
		return err
	}
	var reply SyncReply
	args := SyncArgs{ClientID: c.id, Round: c.round, Frame: c.enc.Encode(upload)}
	if c.async {
		args.Base = c.base
	}
	if err := c.call("Federation.Sync", args, &reply); err != nil {
		return err
	}
	if err := c.install(reply.Frame, reply.RefTag); err != nil {
		return err
	}
	c.round++
	if c.async {
		c.base = reply.Round
	}
	return nil
}

// install decodes one downlink frame into the pooled buffer, loads it into
// the local model, and — once the install actually succeeded — adopts it as
// the delta reference when the server tagged it. A failed install leaves the
// reference untouched, so a retried exchange stays consistent with the
// server's bookkeeping (which only advances when a reply is acted on).
func (c *RemoteClient) install(frame []byte, refTag uint64) error {
	dec, _, err := fedcore.DecodeFrame(frame, nil, c.dec)
	if err != nil {
		return fmt.Errorf("fednet: bad downlink frame: %w", err)
	}
	c.dec = dec
	if err := c.Transport.Download(c.Local, dec); err != nil {
		return err
	}
	if refTag != 0 {
		c.enc.SetRef(refTag, dec)
	}
	return nil
}

// Fetch pulls any model state committed since this client's last install —
// the async protocol's second half (Async reports whether the server runs
// async rounds). It installs the fetched payload and advances the staleness
// base, returning whether anything new arrived. Transient failures retry
// like syncRound; a retry after a successful install is idempotent (the
// advanced base makes the server answer "nothing new").
func (c *RemoteClient) Fetch() (bool, error) {
	for attempt := 0; ; attempt++ {
		var reply FetchReply
		err := c.call("Federation.Fetch", FetchArgs{ClientID: c.id, Base: c.base}, &reply)
		if err == nil {
			if !reply.Has {
				return false, nil
			}
			if derr := c.install(reply.Frame, reply.RefTag); derr != nil {
				err = derr
			} else {
				c.base = reply.Round
				return true, nil
			}
		}
		retry, redial := retryable(err)
		if !retry {
			return false, err
		}
		if attempt >= c.opts.Retries {
			return false, fmt.Errorf("fetch failed after %d attempts: %w", attempt+1, err)
		}
		c.stats.Retries++
		c.noteRetry("fetch", attempt, err)
		c.backoff(attempt)
		if redial {
			if rerr := c.reconnect(); rerr != nil {
				continue
			}
		}
	}
}

// Async reports whether the server runs asynchronous rounds.
func (c *RemoteClient) Async() bool { return c.async }

// Base returns the server round whose global this client last installed
// (async mode — the staleness anchor).
func (c *RemoteClient) Base() int { return c.base }

// resync recovers from a missed round: fetch the server's current state
// and install the global payload, leaving the round counter aligned with
// the server instead of poisoned behind it.
func (c *RemoteClient) resync() error {
	for attempt := 0; ; attempt++ {
		var state StateReply
		err := c.call("Federation.State", StateArgs{}, &state)
		if err == nil {
			if derr := c.Transport.Download(c.Local, state.Global); derr != nil {
				err = derr
			} else {
				// A raw out-of-band install: the server has no record of it,
				// so the next uplink must be absolute.
				c.enc.ClearRef()
				c.round = state.Round
				c.stats.Resyncs++
				mNetResyncs.Inc()
				if obs.Active() {
					obs.Emit(obs.E("resync").At(c.id, c.round, -1))
				}
				return nil
			}
		}
		if retry, redial := retryable(err); !retry {
			return err
		} else if attempt >= c.opts.Retries {
			return fmt.Errorf("resync failed after %d attempts: %w", attempt+1, err)
		} else {
			c.stats.Retries++
			c.noteRetry("resync", attempt, err)
			c.backoff(attempt)
			if redial {
				if rerr := c.reconnect(); rerr != nil {
					continue
				}
			}
		}
	}
}

// noteRetry records one re-attempted step in the metrics and, when a sink is
// installed, as an "rpc_retry" event carrying the failing step and cause.
func (c *RemoteClient) noteRetry(step string, attempt int, err error) {
	mNetRetries.Inc()
	if obs.Active() {
		obs.Emit(obs.E("rpc_retry").At(c.id, c.round, -1).
			S("step", step).
			F("attempt", float64(attempt)).
			S("error", err.Error()))
	}
}

// Close releases the connection.
func (c *RemoteClient) Close() error { return c.rpc.Close() }
