package fednet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fed"
)

// recordingTransport remembers the last successful upload per client so
// tests can check what actually crossed the wire.
type recordingTransport struct {
	fed.Transport
	mu   sync.Mutex
	last map[int]fed.Payload
}

func newRecordingTransport(inner fed.Transport) *recordingTransport {
	return &recordingTransport{Transport: inner, last: map[int]fed.Payload{}}
}

func (r *recordingTransport) Upload(c *fed.Client) (fed.Payload, error) {
	p, err := r.Transport.Upload(c)
	if err == nil {
		r.mu.Lock()
		r.last[c.ID] = append(fed.Payload(nil), p...)
		r.mu.Unlock()
	}
	return p, err
}

// truncOnceTransport corrupts the first n uploads to the wrong length —
// the flaky-serializer scenario behind msgBadUpload retries.
type truncOnceTransport struct {
	fed.Transport
	mu   sync.Mutex
	left int
}

func (tr *truncOnceTransport) Upload(c *fed.Client) (fed.Payload, error) {
	p, err := tr.Transport.Upload(c)
	if err != nil {
		return nil, err
	}
	tr.mu.Lock()
	corrupt := tr.left > 0
	if corrupt {
		tr.left--
	}
	tr.mu.Unlock()
	if corrupt {
		return p[:len(p)-1], nil
	}
	return p, nil
}

// TestKillMidRoundThenRejoin is the acceptance scenario: three clients,
// one dies before uploading. The server's round deadline closes the round
// with the two arrivals (participation-weighted aggregation over exactly
// those two), and the dead client later rejoins, receives the current
// global model, and the full federation completes the next round.
func TestKillMidRoundThenRejoin(t *testing.T) {
	const n = 3
	transport := newRecordingTransport(fed.PublicCriticTransport{})
	ref := newLocalClient(t, 99, 5)
	srv, err := NewServer(ServerConfig{
		Clients: n, K: n, Seed: 42,
		InitialGlobal: mustUpload(t, transport, ref),
		Aggregator:    fed.FedAvg{},
		RoundTimeout:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	clients := make([]*RemoteClient, n)
	for i := 0; i < n; i++ {
		local := newLocalClient(t, i, int64(i)+10)
		rc, err := Dial(addr, local, transport)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = rc
	}

	// Client 2 is killed mid-round: registered, but its process dies before
	// it can upload.
	deadID := clients[2].ID()
	clients[2].Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = clients[i].RunRounds(1, 1)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("surviving client %d: %v", i, errs[i])
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("round took %v; the deadline did not fire", elapsed)
	}
	if srv.Rounds() != 1 {
		t.Fatalf("server rounds %d, want 1", srv.Rounds())
	}
	reports := srv.Reports()
	if len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
	rep := reports[0]
	if !rep.TimedOut || rep.Arrived != 2 || rep.Participants != 2 || rep.Expected != n {
		t.Fatalf("round report %+v, want timed-out 2-of-3", rep)
	}

	// Participation-weighted FedAvg over exactly the two arrivals: the new
	// global is their mean, computed the same way meanPayload does.
	u0, u1 := transport.last[clients[0].Local.ID], transport.last[clients[1].Local.ID]
	global := srv.Global()
	if len(u0) == 0 || len(u0) != len(global) {
		t.Fatalf("recorded upload length %d vs global %d", len(u0), len(global))
	}
	for d := range global {
		want := (u0[d] + u1[d]) * 0.5
		if global[d] != want {
			t.Fatalf("global[%d] = %v, want the 2-client mean %v", d, global[d], want)
		}
	}

	// The dead client restarts and rejoins its old slot. It must come back
	// with the server's *current* global payload and round counter, not the
	// state it died with.
	relocal := newLocalClient(t, 2, 777)
	rejoined, err := DialOptions(addr, relocal, transport, Options{Rejoin: true, RejoinID: deadID})
	if err != nil {
		t.Fatal(err)
	}
	if rejoined.ID() != deadID {
		t.Fatalf("rejoined as %d, want slot %d", rejoined.ID(), deadID)
	}
	if rejoined.Round() != 1 {
		t.Fatalf("rejoined at round %d, want 1", rejoined.Round())
	}
	got := mustUpload(t, fed.PublicCriticTransport{}, relocal)
	for d := range global {
		if got[d] != global[d] {
			t.Fatalf("rejoined client's params diverge from current global at %d", d)
		}
	}

	// Full federation completes the next round on the full barrier.
	all := []*RemoteClient{clients[0], clients[1], rejoined}
	errs3 := make([]error, len(all))
	for i, rc := range all {
		wg.Add(1)
		go func(i int, rc *RemoteClient) {
			defer wg.Done()
			errs3[i] = rc.RunRounds(1, 1)
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs3 {
		if err != nil {
			t.Fatalf("post-rejoin client %d: %v", i, err)
		}
	}
	if srv.Rounds() != 2 {
		t.Fatalf("server rounds %d, want 2", srv.Rounds())
	}
	rep = srv.Reports()[1]
	if rep.TimedOut || rep.Arrived != 3 {
		t.Fatalf("post-rejoin report %+v, want full 3-client barrier", rep)
	}
	for _, rc := range all {
		rc.Close()
	}
}

// TestRetainedResultAfterLostReply: a client that re-sends its Sync after
// the round completed (its reply was lost) gets the identical retained
// result instead of an error.
func TestRetainedResultAfterLostReply(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 90)
	_, addr := startServer(t, 2, 2, fed.FedAvg{}, mustUpload(t, transport, ref))

	rcs := make([]*RemoteClient, 2)
	uploads := make([]fed.Payload, 2)
	for i := range rcs {
		local := newLocalClient(t, i, int64(i)+91)
		rc, err := Dial(addr, local, transport)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		rcs[i] = rc
		local.TrainEpisodes(1)
		uploads[i] = mustUpload(t, transport, local)
	}

	first := make([]SyncReply, 2)
	var wg sync.WaitGroup
	for i, rc := range rcs {
		wg.Add(1)
		go func(i int, rc *RemoteClient) {
			defer wg.Done()
			args := SyncArgs{ClientID: rc.ID(), Round: 0, Frame: testFrame(uploads[i])}
			if err := rc.rpc.Call("Federation.Sync", args, &first[i]); err != nil {
				t.Error(err)
			}
		}(i, rc)
	}
	wg.Wait()

	// Client 0 retries round 0 — as after a lost reply or a duplicate send.
	var again SyncReply
	args := SyncArgs{ClientID: rcs[0].ID(), Round: 0, Frame: testFrame(uploads[0])}
	if err := rcs[0].rpc.Call("Federation.Sync", args, &again); err != nil {
		t.Fatalf("retained-result retry failed: %v", err)
	}
	ap, fp := testDecode(t, again.Frame), testDecode(t, first[0].Frame)
	if len(ap) != len(fp) || again.Participant != first[0].Participant {
		t.Fatal("retained result differs in shape from the original reply")
	}
	for d := range ap {
		if ap[d] != fp[d] {
			t.Fatal("retained result differs from the original reply")
		}
	}
}

// TestStragglerResyncsViaState: a client that missed its round entirely is
// told the round passed, re-downloads the current global via State, and
// continues with an aligned round counter instead of a poisoned one.
func TestStragglerResyncsViaState(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 95)
	srv, err := NewServer(ServerConfig{
		Clients: 2, K: 2, Seed: 42,
		InitialGlobal: mustUpload(t, transport, ref),
		Aggregator:    fed.FedAvg{},
		RoundTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	fast := newLocalClient(t, 0, 96)
	rcFast, err := Dial(addr, fast, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rcFast.Close()
	slow := newLocalClient(t, 1, 97)
	rcSlow, err := Dial(addr, slow, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rcSlow.Close()

	// The fast client runs round 0 alone; the deadline closes it.
	if err := rcFast.RunRounds(1, 1); err != nil {
		t.Fatal(err)
	}
	if srv.Rounds() != 1 {
		t.Fatalf("rounds %d", srv.Rounds())
	}

	// The straggler now tries round 0, learns it passed, and resyncs.
	if err := rcSlow.RunRounds(1, 1); err != nil {
		t.Fatalf("straggler should recover, got %v", err)
	}
	if rcSlow.Round() != 1 {
		t.Fatalf("straggler round %d, want 1 (server-aligned)", rcSlow.Round())
	}
	if st := rcSlow.Stats(); st.Resyncs != 1 {
		t.Fatalf("straggler stats %+v, want one resync", st)
	}
	got := mustUpload(t, transport, slow)
	global := srv.Global()
	for d := range global {
		if got[d] != global[d] {
			t.Fatal("straggler did not adopt the current global payload")
		}
	}
}

// TestBadUploadRejected: a corrupt-length upload is refused with the
// msgBadUpload prefix and does not enter the round.
func TestBadUploadRejected(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 100)
	srv, addr := startServer(t, 1, 1, fed.FedAvg{}, mustUpload(t, transport, ref))
	local := newLocalClient(t, 0, 101)
	rc, err := Dial(addr, local, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	full := mustUpload(t, transport, local)
	var reply SyncReply
	err = rc.rpc.Call("Federation.Sync",
		SyncArgs{ClientID: rc.ID(), Round: 0, Frame: testFrame(full[:len(full)-1])}, &reply)
	if err == nil || !strings.Contains(err.Error(), msgBadUpload) {
		t.Fatalf("err %v, want %q rejection", err, msgBadUpload)
	}
	if srv.Rounds() != 0 {
		t.Fatal("corrupt upload must not advance the round")
	}
}

// TestBadUploadRetriedWithRebuiltPayload: when the corruption is transient
// (serializer flake), the client classifies the server's rejection as
// retryable, rebuilds the payload, and completes the round.
func TestBadUploadRetriedWithRebuiltPayload(t *testing.T) {
	plain := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 105)
	srv, addr := startServer(t, 1, 1, fed.FedAvg{}, mustUpload(t, plain, ref))

	flaky := &truncOnceTransport{Transport: plain, left: 1}
	local := newLocalClient(t, 0, 106)
	rc, err := DialOptions(addr, local, flaky, Options{
		Retries: 3, RetryBase: time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.RunRounds(1, 1); err != nil {
		t.Fatalf("flaky upload should be retried, got %v", err)
	}
	if srv.Rounds() != 1 {
		t.Fatalf("rounds %d", srv.Rounds())
	}
	if st := rc.Stats(); st.Retries != 1 {
		t.Fatalf("stats %+v, want exactly one retry", st)
	}
}

// TestClientRetriesThroughInjectedFaults drives a two-client federation
// through per-client fault injectors (drops on upload and download) and
// requires every round to complete anyway via the retry path.
func TestClientRetriesThroughInjectedFaults(t *testing.T) {
	plain := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 110)
	srv, addr := startServer(t, 2, 2, fed.FedAvg{}, mustUpload(t, plain, ref))

	rcs := make([]*RemoteClient, 2)
	for i := range rcs {
		local := newLocalClient(t, i, int64(i)+111)
		// Each client owns its injector, so its fault schedule is
		// deterministic regardless of goroutine interleaving.
		faulty := fed.NewFaultyTransport(plain, fed.FaultSpec{Drop: 0.3, Seed: int64(i) + 5})
		rc, err := DialOptions(addr, local, faulty, Options{
			Retries: 25, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		rcs[i] = rc
	}

	var wg sync.WaitGroup
	errs := make([]error, len(rcs))
	for i, rc := range rcs {
		wg.Add(1)
		go func(i int, rc *RemoteClient) {
			defer wg.Done()
			errs[i] = rc.RunRounds(3, 1)
			rc.Close()
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if srv.Rounds() != 3 {
		t.Fatalf("rounds %d, want 3", srv.Rounds())
	}
	total := 0
	for _, rc := range rcs {
		total += rc.Stats().Retries
	}
	if total == 0 {
		t.Fatal("with 30% drops someone must have retried")
	}
}

// TestCallTimeoutGivesUp: a Sync blocked forever on a barrier that can
// never fill times out, retries over a fresh connection, and finally
// surfaces ErrRPCTimeout instead of hanging.
func TestCallTimeoutGivesUp(t *testing.T) {
	transport := fed.PublicCriticTransport{}
	ref := newLocalClient(t, 99, 115)
	// Server waits for 2 clients; only one ever dials, and no RoundTimeout
	// is set — the barrier never opens.
	_, addr := startServer(t, 2, 2, fed.FedAvg{}, mustUpload(t, transport, ref))
	local := newLocalClient(t, 0, 116)
	rc, err := DialOptions(addr, local, transport, Options{
		CallTimeout: 50 * time.Millisecond,
		Retries:     1, RetryBase: time.Millisecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	err = rc.RunRounds(1, 1)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("err %v, want ErrRPCTimeout", err)
	}
	st := rc.Stats()
	if st.Timeouts != 2 || st.Retries != 1 {
		t.Fatalf("stats %+v, want 2 timeouts / 1 retry", st)
	}
}
