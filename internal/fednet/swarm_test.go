package fednet

import (
	"strings"
	"testing"

	"repro/internal/fed"
	"repro/internal/obs"
)

// swarmFaults is the chaos template used by the swarm tests: every fault
// kind on at once, probabilities high enough to fire in a small run.
func swarmFaults() fed.FaultSpec {
	return fed.FaultSpec{Drop: 0.08, Duplicate: 0.08, Corrupt: 0.05}
}

func sameSwarmResult(t *testing.T, a, b *SwarmResult) {
	t.Helper()
	if len(a.Global) != len(b.Global) {
		t.Fatalf("global lengths %d vs %d", len(a.Global), len(b.Global))
	}
	for i := range a.Global {
		if a.Global[i] != b.Global[i] {
			t.Fatalf("global[%d] %v vs %v — swarm run is not deterministic", i, a.Global[i], b.Global[i])
		}
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("%d vs %d committed rounds", len(a.Reports), len(b.Reports))
	}
	for r := range a.Reports {
		if a.Reports[r] != b.Reports[r] {
			t.Fatalf("round %d reports diverged:\n a %+v\n b %+v", r, a.Reports[r], b.Reports[r])
		}
	}
	if a.Rounds != b.Rounds || a.Flushed != b.Flushed ||
		a.Retries != b.Retries || a.Faults != b.Faults ||
		a.StaleDrops != b.StaleDrops || a.DupDrops != b.DupDrops ||
		a.MeanReward != b.MeanReward {
		t.Fatalf("swarm summaries diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestSwarmDeterministic runs the 16-client chaos swarm twice on the same
// seed and requires bit-identical results end to end: globals, reports,
// fault schedules, retry counts, drop windows, reward.
func TestSwarmDeterministic(t *testing.T) {
	cfg := SwarmConfig{
		Clients:        16,
		Buffer:         4,
		StalenessBound: 2,
		Rounds:         3,
		Seed:           42,
		Faults:         swarmFaults(),
	}
	a, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameSwarmResult(t, a, b)
	if a.Rounds == 0 {
		t.Fatal("swarm committed no rounds")
	}
	if a.Faults.Total() == 0 {
		t.Fatal("fault injector never fired — the chaos run tested nothing")
	}
	if a.Retries == 0 {
		t.Fatal("no client retried — injected faults were not exercised end to end")
	}
}

// TestSwarmHundredClients is the ISSUE's scale pin: a 100+-client async
// swarm with fault injection completes deterministically under a fixed
// seed, and the staleness metrics are visible through internal/obs.
func TestSwarmHundredClients(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm scale run skipped in -short mode")
	}
	reg := obs.DefaultRegistry()
	var before strings.Builder
	if err := reg.WriteText(&before); err != nil {
		t.Fatal(err)
	}

	cfg := SwarmConfig{
		Clients:        104,
		Buffer:         8,
		StalenessBound: 4,
		Rounds:         2,
		Seed:           7,
		Faults:         swarmFaults(),
	}
	res, err := RunSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every client submits Rounds deltas; with buffer 8 the fleet must have
	// committed a substantial number of rounds.
	if res.Rounds < cfg.Clients*cfg.Rounds/(2*cfg.Buffer) {
		t.Fatalf("only %d rounds committed for %d clients", res.Rounds, cfg.Clients)
	}
	if res.Faults.Total() == 0 {
		t.Fatal("fault injector never fired at scale")
	}

	// Staleness metrics surfaced via obs: the exposition text names them and
	// the histogram observed this run's submissions.
	var after strings.Builder
	if err := reg.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pfrl_fed_staleness_rounds",
		"pfrl_fed_staleness_drops_total",
		"pfrl_fed_async_duplicate_drops_total",
		"pfrl_fed_async_commits_total",
		"pfrl_fed_async_buffer_fill",
	} {
		if !strings.Contains(after.String(), name) {
			t.Fatalf("metric %s missing from obs exposition", name)
		}
	}
	if before.String() == after.String() {
		t.Fatal("swarm run left the obs registry untouched — staleness metrics not recorded")
	}
}
