package fednet

import "repro/internal/obs"

// Networked-federation metrics, registered into the default registry so a
// pfrl-node process exposes its server barrier state and client
// fault-tolerance counters on -metrics-addr. One process typically runs one
// role, so the server and client instrument sets don't collide. Round-level
// aggregation metrics (pfrl_fed_rounds_total, pfrl_fed_aggregate_seconds,
// ...) come from the shared engine in internal/fedcore; only the
// barrier/transport instruments live here.
var (
	netReg = obs.DefaultRegistry()

	// Server side.
	gNetRound = netReg.Gauge("pfrl_fednet_round",
		"current server round (completed aggregations)")
	gNetClients = netReg.Gauge("pfrl_fednet_clients_registered",
		"clients registered with the aggregation server")
	mNetRounds = netReg.Counter("pfrl_fednet_rounds_total",
		"aggregation rounds completed by the server")
	mNetTimedOut = netReg.Counter("pfrl_fednet_rounds_timed_out_total",
		"rounds closed by the deadline instead of a full barrier")

	// Client side.
	mNetRetries = netReg.Counter("pfrl_fednet_client_retries_total",
		"client RPC steps re-attempted after a transient failure")
	mNetTimeouts = netReg.Counter("pfrl_fednet_client_rpc_timeouts_total",
		"client RPCs that exceeded CallTimeout")
	mNetResyncs = netReg.Counter("pfrl_fednet_client_resyncs_total",
		"missed rounds recovered via the State RPC")
)
