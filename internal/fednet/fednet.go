// Package fednet runs the federated layer over a real network: a TCP
// aggregation server (stdlib net/rpc with gob encoding) and remote clients
// that train locally and exchange only model payloads — the paper's
// cross-provider collaboration made literal, with no workload data ever
// leaving a client (§1, §3.4).
//
// Protocol (one round):
//
//  1. Every client calls Sync(round, upload). The call blocks server-side
//     on a round barrier.
//  2. When all registered clients have arrived, the server draws the K
//     participants for the round, aggregates their uploads, stores the new
//     global model, and releases the barrier.
//  3. Each Sync returns the caller's personalized payload (participants) or
//     the stored global model (everyone else) — exactly Algorithm 1's
//     lines 9–15, distributed.
//
// The design trades throughput for reproducibility: uploads are aggregated
// in registration order and participant selection is seeded, so a fednet
// round is bit-identical to an in-process fed.Federation round with the
// same inputs (asserted in tests).
package fednet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/fed"
)

// JoinArgs registers a client with the server.
type JoinArgs struct {
	Name string
}

// JoinReply carries the assigned client id and the initial global model.
type JoinReply struct {
	ClientID int
	Global   fed.Payload
}

// SyncArgs submits one round's upload.
type SyncArgs struct {
	ClientID int
	Round    int
	Upload   fed.Payload
}

// SyncReply returns the payload to install after the round.
type SyncReply struct {
	Payload     fed.Payload
	Participant bool
}

// ServerConfig parameterizes a federation server.
type ServerConfig struct {
	// Clients is N: the number of clients that must register and that the
	// round barrier waits for.
	Clients int
	// K is the number of participants aggregated per round (<=0 or >N
	// means full participation).
	K int
	// Seed drives participant selection.
	Seed int64
	// InitialGlobal is ψ_G^(0), delivered to every joiner.
	InitialGlobal fed.Payload
	// Aggregator combines the uploads each round.
	Aggregator fed.Aggregator
}

// Server is the aggregation endpoint. Create with NewServer, then Serve.
type Server struct {
	cfg ServerConfig
	rng *rand.Rand

	mu         sync.Mutex
	nextID     int
	global     fed.Payload
	round      int
	pending    map[int]fed.Payload // uploads of the in-progress round
	roundDone  chan struct{}       // closed when the round aggregates
	results    map[int]SyncReply
	listener   net.Listener
	rpcSrv     *rpc.Server
	closedOnce sync.Once
	wg         sync.WaitGroup
}

// NewServer builds a server; it does not listen yet.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients < 1 {
		return nil, errors.New("fednet: server needs at least one client")
	}
	if cfg.Aggregator == nil {
		return nil, errors.New("fednet: server needs an aggregator")
	}
	if len(cfg.InitialGlobal) == 0 {
		return nil, errors.New("fednet: server needs an initial global model")
	}
	if cfg.K <= 0 || cfg.K > cfg.Clients {
		cfg.K = cfg.Clients
	}
	s := &Server{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		global:    append(fed.Payload(nil), cfg.InitialGlobal...),
		pending:   map[int]fed.Payload{},
		roundDone: make(chan struct{}),
		results:   map[int]SyncReply{},
	}
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("Federation", &rpcHandler{s: s}); err != nil {
		return nil, err
	}
	return s, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rpcSrv.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections and unblocks in-flight rounds with an
// error. Safe to call multiple times.
func (s *Server) Close() {
	s.closedOnce.Do(func() {
		if s.listener != nil {
			s.listener.Close()
		}
	})
}

// Global returns a copy of the current global model.
func (s *Server) Global() fed.Payload {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(fed.Payload(nil), s.global...)
}

// Rounds returns the number of completed aggregation rounds.
func (s *Server) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// rpcHandler is the net/rpc receiver (kept separate so Server's exported
// methods don't have to fit the RPC signature shape).
type rpcHandler struct{ s *Server }

// Join implements the registration RPC.
func (h *rpcHandler) Join(args JoinArgs, reply *JoinReply) error {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextID >= s.cfg.Clients {
		return fmt.Errorf("fednet: federation is full (%d clients)", s.cfg.Clients)
	}
	reply.ClientID = s.nextID
	reply.Global = append(fed.Payload(nil), s.global...)
	s.nextID++
	return nil
}

// Sync implements the round barrier RPC.
func (h *rpcHandler) Sync(args SyncArgs, reply *SyncReply) error {
	s := h.s
	s.mu.Lock()
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		s.mu.Unlock()
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	if args.Round != s.round {
		s.mu.Unlock()
		return fmt.Errorf("fednet: client %d is on round %d, server on %d", args.ClientID, args.Round, s.round)
	}
	if _, dup := s.pending[args.ClientID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("fednet: duplicate upload from client %d", args.ClientID)
	}
	s.pending[args.ClientID] = append(fed.Payload(nil), args.Upload...)
	done := s.roundDone
	if len(s.pending) == s.cfg.Clients {
		s.aggregateLocked()
		close(done)
	}
	s.mu.Unlock()

	<-done

	s.mu.Lock()
	res, ok := s.results[args.ClientID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fednet: no result for client %d", args.ClientID)
	}
	*reply = res
	return nil
}

// aggregateLocked runs one aggregation; the caller holds s.mu.
func (s *Server) aggregateLocked() {
	n := s.cfg.Clients
	// Participant selection mirrors fed.Federation: identity order at full
	// participation, a seeded shuffle otherwise.
	var participants []int
	if s.cfg.K >= n {
		participants = make([]int, n)
		for i := range participants {
			participants[i] = i
		}
	} else {
		participants = s.rng.Perm(n)[:s.cfg.K]
	}
	uploads := make([]fed.Payload, len(participants))
	for i, id := range participants {
		uploads[i] = s.pending[id]
	}
	personalized, global := s.cfg.Aggregator.Aggregate(uploads)
	s.global = global

	s.results = make(map[int]SyncReply, n)
	isParticipant := map[int]int{}
	for i, id := range participants {
		isParticipant[id] = i
	}
	for id := 0; id < n; id++ {
		if slot, ok := isParticipant[id]; ok {
			s.results[id] = SyncReply{Payload: personalized[slot], Participant: true}
		} else {
			s.results[id] = SyncReply{Payload: append(fed.Payload(nil), s.global...)}
		}
	}
	s.pending = map[int]fed.Payload{}
	s.round++
	s.roundDone = make(chan struct{})
}
