// Package fednet runs the federated layer over a real network: a TCP
// aggregation server (stdlib net/rpc with gob encoding) and remote clients
// that train locally and exchange only model payloads — the paper's
// cross-provider collaboration made literal, with no workload data ever
// leaving a client (§1, §3.4).
//
// Protocol (one round):
//
//  1. Every client calls Sync(round, upload). The call blocks server-side
//     on a round barrier.
//  2. When all registered clients have arrived — or the round deadline
//     expires — the server draws the K participants from the arrivals,
//     aggregates their uploads (participation-weighted: each arrival
//     carries equal weight), stores the new global model, and releases the
//     barrier.
//  3. Each Sync returns the caller's personalized payload (participants) or
//     the stored global model (everyone else) — exactly Algorithm 1's
//     lines 9–15, distributed.
//
// Fault tolerance: Sync is idempotent within a round (a duplicate upload
// from a retrying client is accepted and first-wins), the results of the
// most recently completed round are retained so a client whose reply was
// lost can re-fetch it, and a straggler that missed its round entirely is
// told so and re-downloads the current global model via State instead of
// poisoning the round counter.
//
// The design trades throughput for reproducibility: uploads are aggregated
// in registration order and participant selection is seeded, so a fednet
// round is bit-identical to an in-process fed.Federation round with the
// same inputs (asserted in tests).
package fednet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/fed"
	"repro/internal/obs"
)

// Error-message prefixes shared by server and client. net/rpc flattens
// server-side errors to strings, so the client classifies them by prefix.
const (
	// msgRoundPassed tells a straggler its round aggregated without it;
	// the client must resync via State instead of retrying.
	msgRoundPassed = "fednet: round passed"
	// msgBadUpload flags a corrupt-length upload; the client should
	// rebuild the payload and retry.
	msgBadUpload = "fednet: bad upload"
)

// JoinArgs registers a client with the server.
type JoinArgs struct {
	Name string
	// Rejoin reclaims the slot ClientID after a client restart instead of
	// allocating a fresh one.
	Rejoin   bool
	ClientID int
}

// JoinReply carries the assigned client id, the current global model, and
// the server's current round (non-zero when rejoining mid-training).
type JoinReply struct {
	ClientID int
	Global   fed.Payload
	Round    int
}

// SyncArgs submits one round's upload.
type SyncArgs struct {
	ClientID int
	Round    int
	Upload   fed.Payload
}

// SyncReply returns the payload to install after the round.
type SyncReply struct {
	Payload     fed.Payload
	Participant bool
}

// StateArgs requests the server's current round state.
type StateArgs struct{}

// StateReply carries the current round index and global model — the rejoin
// path for clients that missed a round.
type StateReply struct {
	Round  int
	Global fed.Payload
}

// RoundInfo records one completed aggregation round.
type RoundInfo struct {
	Round int
	// Expected is the registered-client count the barrier waited for.
	Expected int
	// Arrived is how many uploads were present when the round closed.
	Arrived int
	// Participants is how many uploads were aggregated (K-selection
	// applied to the arrivals).
	Participants int
	// TimedOut marks rounds closed by the deadline rather than a full
	// barrier.
	TimedOut bool
}

// ServerConfig parameterizes a federation server.
type ServerConfig struct {
	// Clients is N: the number of clients that must register and that the
	// round barrier waits for.
	Clients int
	// K is the number of participants aggregated per round (<=0 or >N
	// means full participation).
	K int
	// Seed drives participant selection.
	Seed int64
	// InitialGlobal is ψ_G^(0), delivered to every joiner.
	InitialGlobal fed.Payload
	// Aggregator combines the uploads each round.
	Aggregator fed.Aggregator
	// RoundTimeout bounds how long a round stays open once its first
	// upload arrives; on expiry the server aggregates with whoever has
	// arrived. 0 waits for the full barrier forever (the strict protocol).
	RoundTimeout time.Duration
}

// Server is the aggregation endpoint. Create with NewServer, then Serve.
type Server struct {
	cfg ServerConfig
	rng *rand.Rand

	mu          sync.Mutex
	nextID      int
	global      fed.Payload
	round       int
	pending     map[int]fed.Payload // uploads of the in-progress round
	roundDone   chan struct{}       // closed when the round aggregates
	lastRound   int                 // index of the most recently completed round
	lastResults map[int]SyncReply   // that round's per-client results
	timer       *time.Timer         // round deadline, armed at first upload
	reports     []RoundInfo
	listener    net.Listener
	rpcSrv      *rpc.Server
	closedOnce  sync.Once
	wg          sync.WaitGroup
}

// NewServer builds a server; it does not listen yet.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients < 1 {
		return nil, errors.New("fednet: server needs at least one client")
	}
	if cfg.Aggregator == nil {
		return nil, errors.New("fednet: server needs an aggregator")
	}
	if len(cfg.InitialGlobal) == 0 {
		return nil, errors.New("fednet: server needs an initial global model")
	}
	if cfg.K <= 0 || cfg.K > cfg.Clients {
		cfg.K = cfg.Clients
	}
	s := &Server{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		global:    append(fed.Payload(nil), cfg.InitialGlobal...),
		pending:   map[int]fed.Payload{},
		roundDone: make(chan struct{}),
		lastRound: -1,
	}
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("Federation", &rpcHandler{s: s}); err != nil {
		return nil, err
	}
	return s, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rpcSrv.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections and unblocks in-flight rounds with an
// error. Safe to call multiple times.
func (s *Server) Close() {
	s.closedOnce.Do(func() {
		if s.listener != nil {
			s.listener.Close()
		}
		s.mu.Lock()
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		s.mu.Unlock()
	})
}

// Global returns a copy of the current global model.
func (s *Server) Global() fed.Payload {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append(fed.Payload(nil), s.global...)
}

// Rounds returns the number of completed aggregation rounds.
func (s *Server) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Reports returns one RoundInfo per completed round.
func (s *Server) Reports() []RoundInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RoundInfo(nil), s.reports...)
}

// rpcHandler is the net/rpc receiver (kept separate so Server's exported
// methods don't have to fit the RPC signature shape).
type rpcHandler struct{ s *Server }

// Join implements the registration RPC. A fresh join allocates the next
// slot; a rejoin reclaims an existing slot after a client restart and
// returns the current round so the restarted client resumes in step.
func (h *rpcHandler) Join(args JoinArgs, reply *JoinReply) error {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Rejoin {
		if args.ClientID < 0 || args.ClientID >= s.nextID {
			return fmt.Errorf("fednet: rejoin of unknown client %d (joined: %d)", args.ClientID, s.nextID)
		}
		reply.ClientID = args.ClientID
	} else {
		if s.nextID >= s.cfg.Clients {
			return fmt.Errorf("fednet: federation is full (%d clients)", s.cfg.Clients)
		}
		reply.ClientID = s.nextID
		s.nextID++
	}
	reply.Global = append(fed.Payload(nil), s.global...)
	reply.Round = s.round
	gNetClients.Set(float64(s.nextID))
	return nil
}

// State implements the resync RPC: a straggler that missed its round calls
// it to adopt the current round index and global model.
func (h *rpcHandler) State(_ StateArgs, reply *StateReply) error {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Round = s.round
	reply.Global = append(fed.Payload(nil), s.global...)
	return nil
}

// Sync implements the round barrier RPC.
func (h *rpcHandler) Sync(args SyncArgs, reply *SyncReply) error {
	s := h.s
	s.mu.Lock()
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		s.mu.Unlock()
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	if args.Round != s.round {
		// A retry for the round that just completed: return the retained
		// result if this client made it into that round, otherwise tell it
		// the round passed so it resyncs.
		if args.Round == s.lastRound {
			res, ok := s.lastResults[args.ClientID]
			s.mu.Unlock()
			if ok {
				*reply = res
				return nil
			}
			return fmt.Errorf("%s: client %d missed round %d", msgRoundPassed, args.ClientID, args.Round)
		}
		if args.Round < s.round {
			s.mu.Unlock()
			return fmt.Errorf("%s: client %d is on round %d, server on %d", msgRoundPassed, args.ClientID, args.Round, s.round)
		}
		s.mu.Unlock()
		return fmt.Errorf("fednet: client %d is ahead on round %d, server on %d", args.ClientID, args.Round, s.round)
	}
	if len(args.Upload) != len(s.global) {
		s.mu.Unlock()
		return fmt.Errorf("%s: length %d, want %d (client %d)", msgBadUpload, len(args.Upload), len(s.global), args.ClientID)
	}
	if _, dup := s.pending[args.ClientID]; !dup {
		// First-wins: a duplicate from a retrying client changes nothing.
		s.pending[args.ClientID] = append(fed.Payload(nil), args.Upload...)
		if len(s.pending) == 1 && s.cfg.RoundTimeout > 0 {
			round := s.round
			s.timer = time.AfterFunc(s.cfg.RoundTimeout, func() { s.deadline(round) })
		}
	}
	done := s.roundDone
	if len(s.pending) == s.cfg.Clients {
		s.aggregateLocked(false)
		close(done)
	}
	s.mu.Unlock()

	<-done

	s.mu.Lock()
	res, ok := s.lastResults[args.ClientID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fednet: no result for client %d", args.ClientID)
	}
	*reply = res
	return nil
}

// deadline closes round r with whoever arrived, if it is still open.
func (s *Server) deadline(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.round != r || len(s.pending) == 0 {
		return // the round already closed on a full barrier
	}
	done := s.roundDone
	s.aggregateLocked(true)
	close(done)
}

// aggregateLocked runs one aggregation over the arrived uploads; the caller
// holds s.mu. At a full barrier the selection is identical to the
// in-process fed.Federation (identity order at full participation, seeded
// shuffle otherwise); on a timed-out round the K participants are drawn
// from the arrivals only, each carrying equal weight.
func (s *Server) aggregateLocked(timedOut bool) {
	arrived := make([]int, 0, len(s.pending))
	for id := range s.pending {
		arrived = append(arrived, id)
	}
	sort.Ints(arrived)

	var participants []int
	if s.cfg.K >= len(arrived) {
		participants = arrived
	} else {
		idx := s.rng.Perm(len(arrived))[:s.cfg.K]
		participants = make([]int, len(idx))
		for i, j := range idx {
			participants[i] = arrived[j]
		}
	}
	uploads := make([]fed.Payload, len(participants))
	for i, id := range participants {
		uploads[i] = s.pending[id]
	}
	aggStart := time.Now()
	personalized, global := fed.AggregatePartial(s.cfg.Aggregator, uploads, s.global)
	aggDur := time.Since(aggStart)
	s.global = global

	results := make(map[int]SyncReply, len(arrived))
	isParticipant := map[int]int{}
	for i, id := range participants {
		isParticipant[id] = i
	}
	for _, id := range arrived {
		if slot, ok := isParticipant[id]; ok {
			results[id] = SyncReply{Payload: personalized[slot], Participant: true}
		} else {
			results[id] = SyncReply{Payload: append(fed.Payload(nil), s.global...)}
		}
	}
	s.reports = append(s.reports, RoundInfo{
		Round:        s.round,
		Expected:     s.cfg.Clients,
		Arrived:      len(arrived),
		Participants: len(participants),
		TimedOut:     timedOut,
	})
	s.lastRound = s.round
	s.lastResults = results
	s.pending = map[int]fed.Payload{}
	s.round++
	s.roundDone = make(chan struct{})
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}

	obs.GlobalTimers().Add(obs.PhaseAggregate, aggDur)
	mNetRounds.Inc()
	if timedOut {
		mNetTimedOut.Inc()
	}
	gNetRound.Set(float64(s.round))
	hNetAggregate.Observe(aggDur.Seconds())
	if obs.Active() {
		e := obs.E("fednet_round").At(-1, s.lastRound, -1).
			F("expected", float64(s.cfg.Clients)).
			F("arrived", float64(len(arrived))).
			F("participants", float64(len(participants))).
			F("aggregate_seconds", aggDur.Seconds())
		if timedOut {
			e.F("timed_out", 1)
		}
		obs.Emit(e)
	}
}
