// Package fednet runs the federated layer over a real network: a TCP
// aggregation server (stdlib net/rpc with gob encoding) and remote clients
// that train locally and exchange only model payloads — the paper's
// cross-provider collaboration made literal, with no workload data ever
// leaving a client (§1, §3.4).
//
// Protocol (one round):
//
//  1. Every client calls Sync(round, upload). The call blocks server-side
//     on a round barrier.
//  2. When all registered clients have arrived — or the round deadline
//     expires — the server draws the K participants from the arrivals,
//     aggregates their uploads (participation-weighted: each arrival
//     carries equal weight), stores the new global model, and releases the
//     barrier.
//  3. Each Sync returns the caller's personalized payload (participants) or
//     the stored global model (everyone else) — exactly Algorithm 1's
//     lines 9–15, distributed.
//
// Fault tolerance: Sync is idempotent within a round (a duplicate upload
// from a retrying client is accepted and first-wins), the results of the
// most recently completed round are retained so a client whose reply was
// lost can re-fetch it, and a straggler that missed its round entirely is
// told so and re-downloads the current global model via State instead of
// poisoning the round counter.
//
// The round policy itself — seeded K-of-N selection, partial aggregation,
// report bookkeeping, the late-join rule — is not implemented here: the
// server is a thin adapter over the shared round engine (internal/fedcore),
// the same state machine that backs the in-process fed.Federation. The
// design trades throughput for reproducibility: uploads are aggregated in
// registration order and participant selection is seeded, so a fednet round
// is bit-identical to an in-process round with the same inputs (asserted by
// the cross-path equivalence golden test in internal/fedcore).
package fednet

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/fed"
	"repro/internal/fedcore"
)

// Error-message prefixes shared by server and client. net/rpc flattens
// server-side errors to strings, so the client classifies them by prefix.
const (
	// msgRoundPassed tells a straggler its round aggregated without it;
	// the client must resync via State instead of retrying.
	msgRoundPassed = "fednet: round passed"
	// msgBadUpload flags a corrupt-length upload; the client should
	// rebuild the payload and retry.
	msgBadUpload = "fednet: bad upload"
	// msgRefMismatch flags a delta frame whose reference tag does not match
	// the server's bookkeeping (a lost reply left the two ends on different
	// references); the client clears its reference and retries absolutely.
	msgRefMismatch = "fednet: delta reference mismatch"
)

// JoinArgs registers a client with the server.
type JoinArgs struct {
	Name string
	// Rejoin reclaims the slot ClientID after a client restart instead of
	// allocating a fresh one.
	Rejoin   bool
	ClientID int
}

// JoinReply carries the assigned client id, the current global model, the
// server's current round (non-zero when rejoining mid-training), whether the
// server runs asynchronous rounds (which switches the client's Sync
// semantics — see SyncArgs), and the wire codec the client must frame its
// payloads with. The bootstrap global itself travels raw: joins are rare,
// and an exact install gives delta encoding a clean starting point.
type JoinReply struct {
	ClientID int
	Global   fed.Payload
	Round    int
	Async    bool
	Codec    fedcore.CodecConfig
}

// SyncArgs submits one round's upload as a codec frame (fedcore.Encoder on
// the client, fedcore.DecodeFrame on the server — measured wire bytes, not
// gob-encoded float64 slices).
//
// In sync mode Round is the server round the client believes it is
// submitting to (the barrier alignment check). In async mode there is no
// barrier: Round is the client's monotone submission sequence number (the
// engine's dedup key — a retransmit after a lost reply carries the same
// value), and Base is the server round whose global the client last
// installed (the staleness anchor).
type SyncArgs struct {
	ClientID int
	Round    int
	Frame    []byte
	Base     int
}

// SyncReply returns the frame to install after the round. Round is the
// server's round index after this sync; async clients adopt it as their next
// staleness base. A non-zero RefTag instructs the client to adopt the
// decoded payload as its next delta reference under that tag.
type SyncReply struct {
	Frame       []byte
	RefTag      uint64
	Participant bool
	Round       int
}

// FetchArgs asks an async server for model state committed since the
// client's Base round — the pull half of the async protocol: a submission
// that lands before a commit is answered immediately with the then-current
// global, so the client collects its committed (possibly personalized)
// result on its next contact instead.
type FetchArgs struct {
	ClientID int
	Base     int
}

// FetchReply carries the fetched frame when Has is set; Has false means no
// round has committed since Base and the client keeps what it has. RefTag is
// as in SyncReply.
type FetchReply struct {
	Frame       []byte
	RefTag      uint64
	Participant bool
	Round       int
	Has         bool
}

// StateArgs requests the server's current round state.
type StateArgs struct{}

// StateReply carries the current round index and global model — the rejoin
// path for clients that missed a round.
type StateReply struct {
	Round  int
	Global fed.Payload
}

// RoundInfo records one completed aggregation round. It is the engine's
// unified report: on this path Expected is the registered-client count the
// barrier waited for, Arrived is how many uploads were present when the
// round closed, and Participants is the K-selection applied to the
// arrivals.
type RoundInfo = fedcore.RoundReport

// ServerConfig parameterizes a federation server.
type ServerConfig struct {
	// Clients is N: the number of clients that must register and that the
	// round barrier waits for.
	Clients int
	// K is the number of participants aggregated per round (<=0 or >N
	// means full participation).
	K int
	// Seed drives participant selection.
	Seed int64
	// InitialGlobal is ψ_G^(0), delivered to every joiner.
	InitialGlobal fed.Payload
	// Aggregator combines the uploads each round.
	Aggregator fed.Aggregator
	// RoundTimeout bounds how long a round stays open once its first
	// upload arrives; on expiry the server aggregates with whoever has
	// arrived. 0 waits for the full barrier forever (the strict protocol).
	// Ignored in async mode, which has no barrier to time out.
	RoundTimeout time.Duration

	// Async switches the server to buffered asynchronous aggregation: Sync
	// never blocks on a barrier; deltas are staleness-weighted and a commit
	// fires every Buffer accepted arrivals (fedcore.AsyncEngine).
	Async bool
	// StalenessBound caps accepted staleness in async mode (negative =
	// unbounded, zero = fresh only — the sync-degradation setting).
	StalenessBound int
	// Buffer is the async commit trigger B; <= 0 resolves to K.
	Buffer int

	// Codec selects the payload wire codec, announced to every joiner. The
	// zero value (identity tier, absolute) frames payloads bit-exactly — the
	// degradation-pin setting.
	Codec fedcore.CodecConfig
}

// Server is the aggregation endpoint: the RPC/barrier data plane over the
// shared round engine. Create with NewServer, then Serve.
type Server struct {
	cfg    ServerConfig
	engine *fedcore.Engine
	// async is the buffered submission front-end in async mode, nil in sync
	// mode; engine is then async.Engine().
	async *fedcore.AsyncEngine

	mu          sync.Mutex
	nextID      int
	pending     map[int]fed.Payload // decoded uploads of the in-progress round
	roundDone   chan struct{}       // closed when the round aggregates
	lastRound   int                 // index of the most recently completed round
	lastResults map[int]SyncReply   // that round's per-client results (encoded frames)
	timer       *time.Timer         // round deadline, armed at first upload
	listener    net.Listener
	rpcSrv      *rpc.Server
	closedOnce  sync.Once
	wg          sync.WaitGroup

	// Wire codec state (guarded by mu): the per-client delta references —
	// the decoded payload each client last had delivered, under the tag the
	// reply carried — and the tag sequence. comm accumulates measured wire
	// traffic.
	codecRefs    map[int]fed.Payload
	codecRefTags map[int]uint64
	refSeq       uint64
	comm         fed.CommStats

	// Downlink framer (own lock: async replies encode outside mu). Absolute
	// and stateless, so identical payloads produce identical frames.
	downMu  sync.Mutex
	downEnc *fedcore.Encoder
}

// NewServer builds a server; it does not listen yet. Round policy (K
// resolution, aggregator and initial-model validation) is the engine's.
func NewServer(cfg ServerConfig) (*Server, error) {
	coreOpts := fedcore.Options{
		K:       cfg.K,
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
	}
	var engine *fedcore.Engine
	var async *fedcore.AsyncEngine
	if cfg.Async {
		a, err := fedcore.NewAsync(cfg.Aggregator, cfg.InitialGlobal, fedcore.AsyncOptions{
			Options:        coreOpts,
			StalenessBound: cfg.StalenessBound,
			Buffer:         cfg.Buffer,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("fednet: %w", err)
		}
		async, engine = a, a.Engine()
	} else {
		e, err := fedcore.New(cfg.Aggregator, cfg.InitialGlobal, coreOpts)
		if err != nil {
			return nil, fmt.Errorf("fednet: %w", err)
		}
		engine = e
	}
	s := &Server{
		cfg:          cfg,
		engine:       engine,
		async:        async,
		pending:      map[int]fed.Payload{},
		roundDone:    make(chan struct{}),
		lastRound:    -1,
		codecRefs:    map[int]fed.Payload{},
		codecRefTags: map[int]uint64{},
		downEnc:      fedcore.NewEncoder(fedcore.CodecConfig{Tier: cfg.Codec.Tier, NoErrorFeedback: true}),
	}
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("Federation", &rpcHandler{s: s}); err != nil {
		return nil, err
	}
	return s, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rpcSrv.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections and unblocks in-flight rounds with an
// error. Safe to call multiple times.
func (s *Server) Close() {
	s.closedOnce.Do(func() {
		if s.listener != nil {
			s.listener.Close()
		}
		s.mu.Lock()
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		s.mu.Unlock()
	})
}

// Global returns a copy of the current global model.
func (s *Server) Global() fed.Payload { return s.engine.Global() }

// Rounds returns the number of completed aggregation rounds.
func (s *Server) Rounds() int { return s.engine.Round() }

// Reports returns one RoundInfo per completed round.
func (s *Server) Reports() []RoundInfo { return s.engine.Reports() }

// rpcHandler is the net/rpc receiver (kept separate so Server's exported
// methods don't have to fit the RPC signature shape).
type rpcHandler struct{ s *Server }

// Join implements the registration RPC. A fresh join allocates the next
// slot; a rejoin reclaims an existing slot after a client restart and
// returns the current round so the restarted client resumes in step. The
// payload handed out is the engine's late-join policy — the same rule that
// serves an in-process fed.AddClient and a State resync.
func (h *rpcHandler) Join(args JoinArgs, reply *JoinReply) error {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Rejoin {
		if args.ClientID < 0 || args.ClientID >= s.nextID {
			return fmt.Errorf("fednet: rejoin of unknown client %d (joined: %d)", args.ClientID, s.nextID)
		}
		reply.ClientID = args.ClientID
	} else {
		if s.nextID >= s.cfg.Clients {
			return fmt.Errorf("fednet: federation is full (%d clients)", s.cfg.Clients)
		}
		reply.ClientID = s.nextID
		s.nextID++
	}
	if s.async != nil {
		// The async join also clears the slot's dedup state, so a restarted
		// client reusing its id is not blocked by its previous life's seqs.
		reply.Round, reply.Global = s.async.Join(reply.ClientID)
		reply.Async = true
	} else {
		reply.Round, reply.Global = s.engine.Join()
	}
	reply.Codec = s.cfg.Codec
	// The joiner installs the raw global out-of-band, so any reference from
	// a previous life of this slot is void.
	delete(s.codecRefs, reply.ClientID)
	delete(s.codecRefTags, reply.ClientID)
	gNetClients.Set(float64(s.nextID))
	return nil
}

// encodeDown frames one downlink payload absolutely and returns a retained
// copy of the frame plus the receiver's view of it — the decode the client
// will install, which is what delta references must be taken from under the
// lossy tiers. Safe for concurrent use.
func (s *Server) encodeDown(p fed.Payload) ([]byte, fed.Payload) {
	s.downMu.Lock()
	defer s.downMu.Unlock()
	frame := append([]byte(nil), s.downEnc.Encode(p)...)
	dec, _, err := fedcore.DecodeFrame(frame, nil, nil)
	if err != nil {
		panic(fmt.Sprintf("fednet: self-encoded frame failed to decode: %v", err))
	}
	return frame, dec
}

// decodeUpload validates and decodes one uplink frame against the client's
// delta reference. Errors carry the client-classifiable prefixes: a
// malformed or wrong-length frame is msgBadUpload (rebuild and retry), a
// reference-tag disagreement is msgRefMismatch (clear the reference and
// retry absolutely).
func (s *Server) decodeUpload(clientID int, frame []byte) (fed.Payload, error) {
	h, err := fedcore.PeekHeader(frame)
	if err != nil {
		return nil, fmt.Errorf("%s: client %d: %v", msgBadUpload, clientID, err)
	}
	var ref fed.Payload
	if h.Delta {
		s.mu.Lock()
		ref = s.codecRefs[clientID]
		tag := s.codecRefTags[clientID]
		s.mu.Unlock()
		if ref == nil || tag != h.RefTag {
			return nil, fmt.Errorf("%s: client %d sent delta against tag %#x", msgRefMismatch, clientID, h.RefTag)
		}
	}
	up, _, err := fedcore.DecodeFrame(frame, ref, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: client %d: %v", msgBadUpload, clientID, err)
	}
	return up, nil
}

// Comm returns the measured wire traffic accumulated by the server: scalar
// counts and actual codec frame bytes in both directions.
func (s *Server) Comm() fed.CommStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.comm
	c.Rounds = s.engine.Round()
	return c
}

// State implements the resync RPC: a straggler that missed its round calls
// it to adopt the current round index and global model, under the same
// engine join policy as a fresh joiner.
func (h *rpcHandler) State(_ StateArgs, reply *StateReply) error {
	reply.Round, reply.Global = h.s.engine.Join()
	return nil
}

// Sync implements the round exchange RPC: the round barrier in sync mode, a
// non-blocking staleness-weighted submission in async mode.
func (h *rpcHandler) Sync(args SyncArgs, reply *SyncReply) error {
	if h.s.async != nil {
		return h.syncAsync(args, reply)
	}
	s := h.s
	s.mu.Lock()
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		s.mu.Unlock()
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	round := s.engine.Round()
	if args.Round != round {
		// A retry for the round that just completed: return the retained
		// result if this client made it into that round, otherwise tell it
		// the round passed so it resyncs.
		if args.Round == s.lastRound {
			res, ok := s.lastResults[args.ClientID]
			s.mu.Unlock()
			if ok {
				*reply = res
				return nil
			}
			return fmt.Errorf("%s: client %d missed round %d", msgRoundPassed, args.ClientID, args.Round)
		}
		if args.Round < round {
			s.mu.Unlock()
			return fmt.Errorf("%s: client %d is on round %d, server on %d", msgRoundPassed, args.ClientID, args.Round, round)
		}
		s.mu.Unlock()
		return fmt.Errorf("fednet: client %d is ahead on round %d, server on %d", args.ClientID, args.Round, round)
	}
	hd, herr := fedcore.PeekHeader(args.Frame)
	if herr != nil {
		s.mu.Unlock()
		return fmt.Errorf("%s: client %d: %v", msgBadUpload, args.ClientID, herr)
	}
	if expect := s.engine.PayloadLen(); hd.Dim != expect {
		s.mu.Unlock()
		return fmt.Errorf("%s: length %d, want %d (client %d)", msgBadUpload, hd.Dim, expect, args.ClientID)
	}
	if hd.Delta {
		if ref, tag := s.codecRefs[args.ClientID], s.codecRefTags[args.ClientID]; ref == nil || tag != hd.RefTag {
			s.mu.Unlock()
			return fmt.Errorf("%s: client %d sent delta against tag %#x", msgRefMismatch, args.ClientID, hd.RefTag)
		}
	}
	if _, dup := s.pending[args.ClientID]; !dup {
		// First-wins: a duplicate from a retrying client changes nothing.
		up, _, derr := fedcore.DecodeFrame(args.Frame, s.codecRefs[args.ClientID], nil)
		if derr != nil {
			s.mu.Unlock()
			return fmt.Errorf("%s: client %d: %v", msgBadUpload, args.ClientID, derr)
		}
		s.comm.UploadScalars += int64(len(up))
		s.comm.UploadBytes += int64(len(args.Frame))
		fedcore.ObserveWireUpload(len(args.Frame))
		s.pending[args.ClientID] = up
		if len(s.pending) == 1 && s.cfg.RoundTimeout > 0 {
			s.timer = time.AfterFunc(s.cfg.RoundTimeout, func() { s.deadline(round) })
		}
	}
	done := s.roundDone
	if len(s.pending) == s.cfg.Clients {
		s.closeRoundLocked(false)
		close(done)
	}
	s.mu.Unlock()

	<-done

	s.mu.Lock()
	res, ok := s.lastResults[args.ClientID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fednet: no result for client %d", args.ClientID)
	}
	*reply = res
	return nil
}

// syncAsync is the async-mode Sync body: validate, submit to the buffered
// engine (which may commit a round inside the call), and reply immediately —
// the caller never waits out a barrier. The reply carries the client's
// personalized payload when one is available (from the commit this
// submission triggered, or retained from an earlier commit the client
// participated in), otherwise the current global. Duplicate submissions
// (retransmits after a lost reply) are answered idempotently the same way.
func (h *rpcHandler) syncAsync(args SyncArgs, reply *SyncReply) error {
	s := h.s
	s.mu.Lock()
	known := args.ClientID >= 0 && args.ClientID < s.cfg.Clients
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	up, err := s.decodeUpload(args.ClientID, args.Frame)
	if err != nil {
		return err
	}
	res, err := s.async.Submit(args.ClientID, args.Round, args.Base, up)
	if err != nil {
		return fmt.Errorf("%s: length %d, want %d (client %d)", msgBadUpload, len(up), s.engine.PayloadLen(), args.ClientID)
	}
	s.mu.Lock()
	s.comm.UploadScalars += int64(len(up))
	s.comm.UploadBytes += int64(len(args.Frame))
	s.mu.Unlock()
	fedcore.ObserveWireUpload(len(args.Frame))
	if res.Committed != nil {
		s.mu.Lock()
		s.lastRound = res.Committed.Round
		s.mu.Unlock()
		mNetRounds.Inc()
		gNetRound.Set(float64(res.Round))
	}
	reply.Round = res.Round
	var payload fed.Payload
	switch {
	case res.Personalized != nil:
		payload = res.Personalized
		reply.Participant = true
	default:
		if p, ok := s.async.TakePersonal(args.ClientID); ok {
			payload = p
			reply.Participant = true
		} else {
			payload = s.engine.Global()
		}
	}
	reply.Frame, reply.RefTag = s.deliverFrame(args.ClientID, payload)
	return nil
}

// deliverFrame encodes one async/fetch downlink payload and, when delta is
// on, rotates the client's reference to the decoded view under a fresh tag.
func (s *Server) deliverFrame(clientID int, payload fed.Payload) ([]byte, uint64) {
	frame, dec := s.encodeDown(payload)
	var tag uint64
	s.mu.Lock()
	if s.cfg.Codec.Delta {
		s.refSeq++
		tag = s.refSeq
		s.codecRefs[clientID] = dec
		s.codecRefTags[clientID] = tag
	}
	s.comm.DownloadScalars += int64(len(payload))
	s.comm.DownloadBytes += int64(len(frame))
	ratio := s.comm.CompressionRatio()
	s.mu.Unlock()
	fedcore.ObserveWireDownload(len(frame))
	fedcore.SetCompressionRatio(ratio)
	return frame, tag
}

// Fetch implements the async pull RPC: when a round has committed since the
// client's Base, it returns the client's retained personalized payload (if
// it participated in that commit) or the current global. Sync servers
// reject it — the barrier reply already delivers every result.
func (h *rpcHandler) Fetch(args FetchArgs, reply *FetchReply) error {
	s := h.s
	if s.async == nil {
		return fmt.Errorf("fednet: Fetch requires an async server")
	}
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	round := s.engine.Round()
	reply.Round = round
	if round <= args.Base {
		return nil
	}
	reply.Has = true
	var payload fed.Payload
	if p, ok := s.async.TakePersonal(args.ClientID); ok {
		payload, reply.Participant = p, true
	} else {
		payload = s.engine.Global()
	}
	reply.Frame, reply.RefTag = s.deliverFrame(args.ClientID, payload)
	return nil
}

// Flush force-commits a partially filled async buffer (end of a run) so
// trailing deltas are not lost. A no-op in sync mode or when the buffer is
// empty.
func (s *Server) Flush() (RoundInfo, bool) {
	if s.async == nil {
		return RoundInfo{}, false
	}
	report, ok := s.async.Flush()
	if ok {
		s.mu.Lock()
		s.lastRound = report.Round
		s.mu.Unlock()
		mNetRounds.Inc()
		gNetRound.Set(float64(s.engine.Round()))
	}
	return report, ok
}

// deadline closes round r with whoever arrived, if it is still open.
func (s *Server) deadline(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine.Round() != r || len(s.pending) == 0 {
		return // the round already closed on a full barrier
	}
	done := s.roundDone
	s.closeRoundLocked(true)
	close(done)
}

// closeRoundLocked hands the arrived uploads to the engine and retains the
// per-client results for the barrier release; the caller holds s.mu. The
// engine owns selection and aggregation: at a full barrier the selection is
// identical to the in-process fed.Federation (identity order at full
// participation, seeded shuffle otherwise); on a timed-out round the K
// participants are drawn from the arrivals only, each carrying equal
// weight. This path pushes: everyone uploads, then K of the arrivals are
// selected, so Selected ≤ Arrived in the report.
func (s *Server) closeRoundLocked(timedOut bool) {
	round := s.engine.Round()
	arrived := make([]int, 0, len(s.pending))
	for id := range s.pending {
		arrived = append(arrived, id)
	}
	sort.Ints(arrived)

	participants := s.engine.Select(arrived)
	contribs := make([]fedcore.Contribution, len(participants))
	for i, id := range participants {
		contribs[i] = fedcore.Contribution{ID: id, Upload: s.pending[id]}
	}
	results := make(map[int]SyncReply, len(arrived))
	report := s.engine.CompleteRound(contribs, fedcore.RoundStats{
		Expected: s.cfg.Clients,
		Selected: len(participants),
		Arrived:  len(arrived),
		TimedOut: timedOut,
	}, func(personalized map[int]fedcore.Payload, global fedcore.Payload) (int, time.Duration) {
		// Retained results are encoded frames — the personalized payloads
		// live in arena buffers the engine rewrites next round, and
		// identical payloads (FedAvg/Momentum alias all participants to one
		// model) share a single frame, so the common case encodes twice per
		// round (participants' payload + the global) regardless of N.
		var lastPtr *float64
		var lastFrame []byte
		var lastDec fed.Payload
		frameOf := func(p fed.Payload) ([]byte, fed.Payload) {
			if lastPtr != &p[0] {
				lastFrame, lastDec = s.encodeDown(p)
				lastPtr = &p[0]
			}
			return lastFrame, lastDec
		}
		for _, id := range arrived {
			p, participant := personalized[id]
			if !participant {
				p = global
			}
			frame, dec := frameOf(p)
			res := SyncReply{Frame: frame, Participant: participant, Round: round + 1}
			if s.cfg.Codec.Delta {
				s.refSeq++
				res.RefTag = s.refSeq
				s.codecRefs[id] = dec
				s.codecRefTags[id] = s.refSeq
			}
			results[id] = res
			s.comm.DownloadScalars += int64(len(p))
			s.comm.DownloadBytes += int64(len(frame))
			fedcore.ObserveWireDownload(len(frame))
		}
		fedcore.SetCompressionRatio(s.comm.CompressionRatio())
		return 0, 0
	})

	s.lastRound = report.Round
	s.lastResults = results
	s.pending = map[int]fed.Payload{}
	s.roundDone = make(chan struct{})
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}

	mNetRounds.Inc()
	if timedOut {
		mNetTimedOut.Inc()
	}
	gNetRound.Set(float64(s.engine.Round()))
}
