// Package fednet runs the federated layer over a real network: a TCP
// aggregation server (stdlib net/rpc with gob encoding) and remote clients
// that train locally and exchange only model payloads — the paper's
// cross-provider collaboration made literal, with no workload data ever
// leaving a client (§1, §3.4).
//
// Protocol (one round):
//
//  1. Every client calls Sync(round, upload). The call blocks server-side
//     on a round barrier.
//  2. When all registered clients have arrived — or the round deadline
//     expires — the server draws the K participants from the arrivals,
//     aggregates their uploads (participation-weighted: each arrival
//     carries equal weight), stores the new global model, and releases the
//     barrier.
//  3. Each Sync returns the caller's personalized payload (participants) or
//     the stored global model (everyone else) — exactly Algorithm 1's
//     lines 9–15, distributed.
//
// Fault tolerance: Sync is idempotent within a round (a duplicate upload
// from a retrying client is accepted and first-wins), the results of the
// most recently completed round are retained so a client whose reply was
// lost can re-fetch it, and a straggler that missed its round entirely is
// told so and re-downloads the current global model via State instead of
// poisoning the round counter.
//
// The round policy itself — seeded K-of-N selection, partial aggregation,
// report bookkeeping, the late-join rule — is not implemented here: the
// server is a thin adapter over the shared round engine (internal/fedcore),
// the same state machine that backs the in-process fed.Federation. The
// design trades throughput for reproducibility: uploads are aggregated in
// registration order and participant selection is seeded, so a fednet round
// is bit-identical to an in-process round with the same inputs (asserted by
// the cross-path equivalence golden test in internal/fedcore).
package fednet

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/fed"
	"repro/internal/fedcore"
)

// Error-message prefixes shared by server and client. net/rpc flattens
// server-side errors to strings, so the client classifies them by prefix.
const (
	// msgRoundPassed tells a straggler its round aggregated without it;
	// the client must resync via State instead of retrying.
	msgRoundPassed = "fednet: round passed"
	// msgBadUpload flags a corrupt-length upload; the client should
	// rebuild the payload and retry.
	msgBadUpload = "fednet: bad upload"
)

// JoinArgs registers a client with the server.
type JoinArgs struct {
	Name string
	// Rejoin reclaims the slot ClientID after a client restart instead of
	// allocating a fresh one.
	Rejoin   bool
	ClientID int
}

// JoinReply carries the assigned client id, the current global model, the
// server's current round (non-zero when rejoining mid-training), and whether
// the server runs asynchronous rounds (which switches the client's Sync
// semantics — see SyncArgs).
type JoinReply struct {
	ClientID int
	Global   fed.Payload
	Round    int
	Async    bool
}

// SyncArgs submits one round's upload.
//
// In sync mode Round is the server round the client believes it is
// submitting to (the barrier alignment check). In async mode there is no
// barrier: Round is the client's monotone submission sequence number (the
// engine's dedup key — a retransmit after a lost reply carries the same
// value), and Base is the server round whose global the client last
// installed (the staleness anchor).
type SyncArgs struct {
	ClientID int
	Round    int
	Upload   fed.Payload
	Base     int
}

// SyncReply returns the payload to install after the round. Round is the
// server's round index after this sync; async clients adopt it as their next
// staleness base.
type SyncReply struct {
	Payload     fed.Payload
	Participant bool
	Round       int
}

// FetchArgs asks an async server for model state committed since the
// client's Base round — the pull half of the async protocol: a submission
// that lands before a commit is answered immediately with the then-current
// global, so the client collects its committed (possibly personalized)
// result on its next contact instead.
type FetchArgs struct {
	ClientID int
	Base     int
}

// FetchReply carries the fetched payload when Has is set; Has false means
// no round has committed since Base and the client keeps what it has.
type FetchReply struct {
	Payload     fed.Payload
	Participant bool
	Round       int
	Has         bool
}

// StateArgs requests the server's current round state.
type StateArgs struct{}

// StateReply carries the current round index and global model — the rejoin
// path for clients that missed a round.
type StateReply struct {
	Round  int
	Global fed.Payload
}

// RoundInfo records one completed aggregation round. It is the engine's
// unified report: on this path Expected is the registered-client count the
// barrier waited for, Arrived is how many uploads were present when the
// round closed, and Participants is the K-selection applied to the
// arrivals.
type RoundInfo = fedcore.RoundReport

// ServerConfig parameterizes a federation server.
type ServerConfig struct {
	// Clients is N: the number of clients that must register and that the
	// round barrier waits for.
	Clients int
	// K is the number of participants aggregated per round (<=0 or >N
	// means full participation).
	K int
	// Seed drives participant selection.
	Seed int64
	// InitialGlobal is ψ_G^(0), delivered to every joiner.
	InitialGlobal fed.Payload
	// Aggregator combines the uploads each round.
	Aggregator fed.Aggregator
	// RoundTimeout bounds how long a round stays open once its first
	// upload arrives; on expiry the server aggregates with whoever has
	// arrived. 0 waits for the full barrier forever (the strict protocol).
	// Ignored in async mode, which has no barrier to time out.
	RoundTimeout time.Duration

	// Async switches the server to buffered asynchronous aggregation: Sync
	// never blocks on a barrier; deltas are staleness-weighted and a commit
	// fires every Buffer accepted arrivals (fedcore.AsyncEngine).
	Async bool
	// StalenessBound caps accepted staleness in async mode (negative =
	// unbounded, zero = fresh only — the sync-degradation setting).
	StalenessBound int
	// Buffer is the async commit trigger B; <= 0 resolves to K.
	Buffer int
}

// Server is the aggregation endpoint: the RPC/barrier data plane over the
// shared round engine. Create with NewServer, then Serve.
type Server struct {
	cfg    ServerConfig
	engine *fedcore.Engine
	// async is the buffered submission front-end in async mode, nil in sync
	// mode; engine is then async.Engine().
	async *fedcore.AsyncEngine

	mu          sync.Mutex
	nextID      int
	pending     map[int]fed.Payload // uploads of the in-progress round
	roundDone   chan struct{}       // closed when the round aggregates
	lastRound   int                 // index of the most recently completed round
	lastResults map[int]SyncReply   // that round's per-client results
	timer       *time.Timer         // round deadline, armed at first upload
	listener    net.Listener
	rpcSrv      *rpc.Server
	closedOnce  sync.Once
	wg          sync.WaitGroup
}

// NewServer builds a server; it does not listen yet. Round policy (K
// resolution, aggregator and initial-model validation) is the engine's.
func NewServer(cfg ServerConfig) (*Server, error) {
	coreOpts := fedcore.Options{
		K:       cfg.K,
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
	}
	var engine *fedcore.Engine
	var async *fedcore.AsyncEngine
	if cfg.Async {
		a, err := fedcore.NewAsync(cfg.Aggregator, cfg.InitialGlobal, fedcore.AsyncOptions{
			Options:        coreOpts,
			StalenessBound: cfg.StalenessBound,
			Buffer:         cfg.Buffer,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("fednet: %w", err)
		}
		async, engine = a, a.Engine()
	} else {
		e, err := fedcore.New(cfg.Aggregator, cfg.InitialGlobal, coreOpts)
		if err != nil {
			return nil, fmt.Errorf("fednet: %w", err)
		}
		engine = e
	}
	s := &Server{
		cfg:       cfg,
		engine:    engine,
		async:     async,
		pending:   map[int]fed.Payload{},
		roundDone: make(chan struct{}),
		lastRound: -1,
	}
	s.rpcSrv = rpc.NewServer()
	if err := s.rpcSrv.RegisterName("Federation", &rpcHandler{s: s}); err != nil {
		return nil, err
	}
	return s, nil
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rpcSrv.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections and unblocks in-flight rounds with an
// error. Safe to call multiple times.
func (s *Server) Close() {
	s.closedOnce.Do(func() {
		if s.listener != nil {
			s.listener.Close()
		}
		s.mu.Lock()
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		s.mu.Unlock()
	})
}

// Global returns a copy of the current global model.
func (s *Server) Global() fed.Payload { return s.engine.Global() }

// Rounds returns the number of completed aggregation rounds.
func (s *Server) Rounds() int { return s.engine.Round() }

// Reports returns one RoundInfo per completed round.
func (s *Server) Reports() []RoundInfo { return s.engine.Reports() }

// rpcHandler is the net/rpc receiver (kept separate so Server's exported
// methods don't have to fit the RPC signature shape).
type rpcHandler struct{ s *Server }

// Join implements the registration RPC. A fresh join allocates the next
// slot; a rejoin reclaims an existing slot after a client restart and
// returns the current round so the restarted client resumes in step. The
// payload handed out is the engine's late-join policy — the same rule that
// serves an in-process fed.AddClient and a State resync.
func (h *rpcHandler) Join(args JoinArgs, reply *JoinReply) error {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.Rejoin {
		if args.ClientID < 0 || args.ClientID >= s.nextID {
			return fmt.Errorf("fednet: rejoin of unknown client %d (joined: %d)", args.ClientID, s.nextID)
		}
		reply.ClientID = args.ClientID
	} else {
		if s.nextID >= s.cfg.Clients {
			return fmt.Errorf("fednet: federation is full (%d clients)", s.cfg.Clients)
		}
		reply.ClientID = s.nextID
		s.nextID++
	}
	if s.async != nil {
		// The async join also clears the slot's dedup state, so a restarted
		// client reusing its id is not blocked by its previous life's seqs.
		reply.Round, reply.Global = s.async.Join(reply.ClientID)
		reply.Async = true
	} else {
		reply.Round, reply.Global = s.engine.Join()
	}
	gNetClients.Set(float64(s.nextID))
	return nil
}

// State implements the resync RPC: a straggler that missed its round calls
// it to adopt the current round index and global model, under the same
// engine join policy as a fresh joiner.
func (h *rpcHandler) State(_ StateArgs, reply *StateReply) error {
	reply.Round, reply.Global = h.s.engine.Join()
	return nil
}

// Sync implements the round exchange RPC: the round barrier in sync mode, a
// non-blocking staleness-weighted submission in async mode.
func (h *rpcHandler) Sync(args SyncArgs, reply *SyncReply) error {
	if h.s.async != nil {
		return h.syncAsync(args, reply)
	}
	s := h.s
	s.mu.Lock()
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		s.mu.Unlock()
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	round := s.engine.Round()
	if args.Round != round {
		// A retry for the round that just completed: return the retained
		// result if this client made it into that round, otherwise tell it
		// the round passed so it resyncs.
		if args.Round == s.lastRound {
			res, ok := s.lastResults[args.ClientID]
			s.mu.Unlock()
			if ok {
				*reply = res
				return nil
			}
			return fmt.Errorf("%s: client %d missed round %d", msgRoundPassed, args.ClientID, args.Round)
		}
		if args.Round < round {
			s.mu.Unlock()
			return fmt.Errorf("%s: client %d is on round %d, server on %d", msgRoundPassed, args.ClientID, args.Round, round)
		}
		s.mu.Unlock()
		return fmt.Errorf("fednet: client %d is ahead on round %d, server on %d", args.ClientID, args.Round, round)
	}
	if expect := s.engine.PayloadLen(); len(args.Upload) != expect {
		s.mu.Unlock()
		return fmt.Errorf("%s: length %d, want %d (client %d)", msgBadUpload, len(args.Upload), expect, args.ClientID)
	}
	if _, dup := s.pending[args.ClientID]; !dup {
		// First-wins: a duplicate from a retrying client changes nothing.
		s.pending[args.ClientID] = append(fed.Payload(nil), args.Upload...)
		if len(s.pending) == 1 && s.cfg.RoundTimeout > 0 {
			s.timer = time.AfterFunc(s.cfg.RoundTimeout, func() { s.deadline(round) })
		}
	}
	done := s.roundDone
	if len(s.pending) == s.cfg.Clients {
		s.closeRoundLocked(false)
		close(done)
	}
	s.mu.Unlock()

	<-done

	s.mu.Lock()
	res, ok := s.lastResults[args.ClientID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fednet: no result for client %d", args.ClientID)
	}
	*reply = res
	return nil
}

// syncAsync is the async-mode Sync body: validate, submit to the buffered
// engine (which may commit a round inside the call), and reply immediately —
// the caller never waits out a barrier. The reply carries the client's
// personalized payload when one is available (from the commit this
// submission triggered, or retained from an earlier commit the client
// participated in), otherwise the current global. Duplicate submissions
// (retransmits after a lost reply) are answered idempotently the same way.
func (h *rpcHandler) syncAsync(args SyncArgs, reply *SyncReply) error {
	s := h.s
	s.mu.Lock()
	known := args.ClientID >= 0 && args.ClientID < s.cfg.Clients
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	res, err := s.async.Submit(args.ClientID, args.Round, args.Base, args.Upload)
	if err != nil {
		return fmt.Errorf("%s: length %d, want %d (client %d)", msgBadUpload, len(args.Upload), s.engine.PayloadLen(), args.ClientID)
	}
	if res.Committed != nil {
		s.mu.Lock()
		s.lastRound = res.Committed.Round
		s.mu.Unlock()
		mNetRounds.Inc()
		gNetRound.Set(float64(res.Round))
	}
	reply.Round = res.Round
	switch {
	case res.Personalized != nil:
		reply.Payload = res.Personalized
		reply.Participant = true
	default:
		if p, ok := s.async.TakePersonal(args.ClientID); ok {
			reply.Payload = p
			reply.Participant = true
		} else {
			reply.Payload = s.engine.Global()
		}
	}
	return nil
}

// Fetch implements the async pull RPC: when a round has committed since the
// client's Base, it returns the client's retained personalized payload (if
// it participated in that commit) or the current global. Sync servers
// reject it — the barrier reply already delivers every result.
func (h *rpcHandler) Fetch(args FetchArgs, reply *FetchReply) error {
	s := h.s
	if s.async == nil {
		return fmt.Errorf("fednet: Fetch requires an async server")
	}
	if args.ClientID < 0 || args.ClientID >= s.cfg.Clients {
		return fmt.Errorf("fednet: unknown client %d", args.ClientID)
	}
	round := s.engine.Round()
	reply.Round = round
	if round <= args.Base {
		return nil
	}
	reply.Has = true
	if p, ok := s.async.TakePersonal(args.ClientID); ok {
		reply.Payload, reply.Participant = p, true
	} else {
		reply.Payload = s.engine.Global()
	}
	return nil
}

// Flush force-commits a partially filled async buffer (end of a run) so
// trailing deltas are not lost. A no-op in sync mode or when the buffer is
// empty.
func (s *Server) Flush() (RoundInfo, bool) {
	if s.async == nil {
		return RoundInfo{}, false
	}
	report, ok := s.async.Flush()
	if ok {
		s.mu.Lock()
		s.lastRound = report.Round
		s.mu.Unlock()
		mNetRounds.Inc()
		gNetRound.Set(float64(s.engine.Round()))
	}
	return report, ok
}

// deadline closes round r with whoever arrived, if it is still open.
func (s *Server) deadline(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine.Round() != r || len(s.pending) == 0 {
		return // the round already closed on a full barrier
	}
	done := s.roundDone
	s.closeRoundLocked(true)
	close(done)
}

// closeRoundLocked hands the arrived uploads to the engine and retains the
// per-client results for the barrier release; the caller holds s.mu. The
// engine owns selection and aggregation: at a full barrier the selection is
// identical to the in-process fed.Federation (identity order at full
// participation, seeded shuffle otherwise); on a timed-out round the K
// participants are drawn from the arrivals only, each carrying equal
// weight. This path pushes: everyone uploads, then K of the arrivals are
// selected, so Selected ≤ Arrived in the report.
func (s *Server) closeRoundLocked(timedOut bool) {
	round := s.engine.Round()
	arrived := make([]int, 0, len(s.pending))
	for id := range s.pending {
		arrived = append(arrived, id)
	}
	sort.Ints(arrived)

	participants := s.engine.Select(arrived)
	contribs := make([]fedcore.Contribution, len(participants))
	for i, id := range participants {
		contribs[i] = fedcore.Contribution{ID: id, Upload: s.pending[id]}
	}
	results := make(map[int]SyncReply, len(arrived))
	report := s.engine.CompleteRound(contribs, fedcore.RoundStats{
		Expected: s.cfg.Clients,
		Selected: len(participants),
		Arrived:  len(arrived),
		TimedOut: timedOut,
	}, func(personalized map[int]fedcore.Payload, global fedcore.Payload) (int, time.Duration) {
		for _, id := range arrived {
			if p, ok := personalized[id]; ok {
				results[id] = SyncReply{Payload: p, Participant: true, Round: round + 1}
			} else {
				results[id] = SyncReply{Payload: append(fed.Payload(nil), global...), Round: round + 1}
			}
		}
		return 0, 0
	})

	s.lastRound = report.Round
	s.lastResults = results
	s.pending = map[int]fed.Payload{}
	s.roundDone = make(chan struct{})
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}

	mNetRounds.Inc()
	if timedOut {
		mNetTimedOut.Inc()
	}
	gNetRound.Set(float64(s.engine.Round()))
}
