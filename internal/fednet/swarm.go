// Swarm harness: a deterministic many-client async federation run over a
// loopback fednet deployment, with the fault injector on. The harness
// serializes all client activity through a virtual-time scheduler — a heap
// of (next activation, client id) pairs driven by per-client seeded pacing
// RNGs — so a run is a pure function of its SwarmConfig: faults, retries,
// staleness drops, and the committed globals all replay bit-identically
// under the same seed. That determinism is what makes a 100+-client chaos
// run assertable in CI.
package fednet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/rl"
	"repro/internal/workload"
)

// swarmProfiles are the heterogeneous cluster shapes cycled across client
// ids. PadVMs is forced to the widest profile so every client's observation
// (and therefore transport payload) has the federation-wide fixed width.
var swarmProfiles = [][]cloudsim.VMSpec{
	{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}},
	{{CPU: 2, Mem: 8}, {CPU: 4, Mem: 8}, {CPU: 8, Mem: 16}},
	{{CPU: 16, Mem: 64}},
	{{CPU: 4, Mem: 8}, {CPU: 4, Mem: 32}, {CPU: 8, Mem: 16}},
}

// swarmDatasets are the workload models cycled across client ids, so the
// swarm is heterogeneous in data as well as hardware.
var swarmDatasets = []workload.DatasetID{workload.Google, workload.Alibaba2017, workload.Alibaba2018}

// SwarmConfig parameterizes a swarm run. Zero values pick the documented
// defaults.
type SwarmConfig struct {
	// Clients is the swarm size (required, >= 1).
	Clients int
	// K is the per-commit aggregation fan-in (default: Clients).
	K int
	// Buffer is the async commit buffer B (default: K).
	Buffer int
	// StalenessBound caps accepted staleness; negative means unbounded
	// (the default), zero accepts only fresh deltas.
	StalenessBound int
	// Rounds is how many (train, submit) rounds each client performs
	// (default 2).
	Rounds int
	// CommEvery is the local episodes per round (default 1).
	CommEvery int
	// Tasks is the per-client workload size (default 8).
	Tasks int
	// Seed drives everything: client construction, pacing, faults, retry
	// jitter. Same seed, same run.
	Seed int64
	// Faults is the fault-injection template applied to every client's
	// transport; its Seed field is ignored and re-derived per client.
	Faults fed.FaultSpec
	// Retries bounds per-step client retries (default 8 — chaos runs need
	// headroom).
	Retries int
	// Codec configures the wire codec for every client in the swarm. The
	// zero value is the lossless identity tier.
	Codec fedcore.CodecConfig
}

func (c *SwarmConfig) defaults() error {
	if c.Clients < 1 {
		return fmt.Errorf("fednet: swarm needs at least one client, got %d", c.Clients)
	}
	if c.K <= 0 {
		c.K = c.Clients
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.CommEvery <= 0 {
		c.CommEvery = 1
	}
	if c.Tasks <= 0 {
		c.Tasks = 8
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	return nil
}

// SwarmResult is the deterministic summary of a swarm run.
type SwarmResult struct {
	// Global is the final committed global payload (post-flush).
	Global fed.Payload
	// Reports are the committed round reports in order, staleness and
	// duplicate drop counts included.
	Reports []RoundInfo
	// Rounds is the number of committed aggregation rounds.
	Rounds int
	// Flushed reports whether shutdown force-committed a partial buffer.
	Flushed bool
	// Retries is the total number of client step retries (any cause).
	Retries int
	// Faults aggregates injected fault events across all clients.
	Faults fed.FaultStats
	// StaleDrops / DupDrops total the per-round drop windows.
	StaleDrops, DupDrops int
	// MeanReward is the fleet-mean reward of the final training episode.
	MeanReward float64
	// Comm is the server-side communication ledger: scalar counts plus the
	// measured wire bytes of every accepted frame.
	Comm fed.CommStats
	// Elapsed is the wall-clock time of the schedule drive loop (dial and
	// teardown excluded), for round-throughput reporting. It is the one
	// non-deterministic field of the result.
	Elapsed time.Duration
}

// swarmEvent is one scheduled client activation in virtual time.
type swarmEvent struct {
	at     int64 // virtual timestamp; ties break on id
	id     int
	rounds int // rounds completed so far
}

type swarmHeap []swarmEvent

func (h swarmHeap) Len() int { return len(h) }
func (h swarmHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h swarmHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *swarmHeap) Push(x any)        { *h = append(*h, x.(swarmEvent)) }
func (h *swarmHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// swarmPad holds the federation-wide observation pads and normalization
// caps: every client must encode to the same width against the same caps
// for the transport payloads to be aggregable.
type swarmPad struct {
	vms, vcpus int
	maxMem     float64
}

func swarmPads() swarmPad {
	var p swarmPad
	for _, profile := range swarmProfiles {
		if len(profile) > p.vms {
			p.vms = len(profile)
		}
		for _, vm := range profile {
			if vm.CPU > p.vcpus {
				p.vcpus = vm.CPU
			}
			if vm.Mem > p.maxMem {
				p.maxMem = vm.Mem
			}
		}
	}
	return p
}

// swarmClient builds one heterogeneous in-process client: cluster shape and
// workload model cycle with the id, observation width is federation-wide.
func swarmClient(id int, seed int64, tasks int, pad swarmPad) (*fed.Client, error) {
	cfg := cloudsim.DefaultConfig(swarmProfiles[id%len(swarmProfiles)])
	cfg.PadVMs = pad.vms
	cfg.PadVCPUs = pad.vcpus
	cfg.MaxCPU = pad.vcpus
	cfg.MaxMem = pad.maxMem
	rng := rand.New(rand.NewSource(seed))
	sampled := cloudsim.ClampTasks(
		workload.SampleDataset(swarmDatasets[id%len(swarmDatasets)], rng, tasks), cfg.VMs)
	agent := rl.NewDualCriticPPO(
		rl.DefaultConfig(cloudsim.StateDim(cfg), cfg.PadVMs+1),
		rand.New(rand.NewSource(seed*31+7)))
	return fed.NewClient(id, fmt.Sprintf("swarm-%d", id), cfg, sampled, agent)
}

// RunSwarm executes one deterministic swarm run: builds Clients
// heterogeneous in-process clients, boots a loopback async server, wraps
// every client transport in the seeded fault injector, and drives the fleet
// through a serialized virtual-time schedule until every client has
// finished its rounds. Shutdown flushes the partial buffer and runs a final
// fetch pass so every client installs the last commit.
func RunSwarm(cfg SwarmConfig) (*SwarmResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	pad := swarmPads()
	clients := make([]*fed.Client, cfg.Clients)
	for i := range clients {
		c, err := swarmClient(i, cfg.Seed+int64(i)*1000003, cfg.Tasks, pad)
		if err != nil {
			return nil, fmt.Errorf("fednet: swarm client %d: %w", i, err)
		}
		clients[i] = c
	}

	transport := fed.PublicCriticTransport{}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(ServerConfig{
		Clients:        cfg.Clients,
		K:              cfg.K,
		Seed:           cfg.Seed,
		InitialGlobal:  initial,
		Aggregator:     fed.NewAttention(cfg.Seed),
		Async:          true,
		StalenessBound: cfg.StalenessBound,
		Buffer:         cfg.Buffer,
		Codec:          cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	// Dial with the clean transport so the join-time install cannot be hit
	// by an injected fault, then swap the fault injector in for the run.
	rcs := make([]*RemoteClient, cfg.Clients)
	faulties := make([]*fed.FaultyTransport, cfg.Clients)
	for i, c := range clients {
		rc, err := DialOptions(addr, c, transport, Options{
			Retries:   cfg.Retries,
			RetryBase: time.Millisecond,
			RetryMax:  4 * time.Millisecond,
			Seed:      cfg.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("fednet: swarm dial %d: %w", i, err)
		}
		defer rc.Close()
		if !rc.Async() {
			return nil, fmt.Errorf("fednet: swarm server not in async mode")
		}
		spec := cfg.Faults
		spec.Seed = cfg.Seed + int64(i)*104729
		faulty := fed.NewFaultyTransport(transport, spec)
		rc.Transport = faulty
		rcs[i] = rc
		faulties[i] = faulty
	}

	// Virtual-time schedule: each client's activations are paced by its own
	// seeded RNG; the heap serializes the fleet into one deterministic
	// interleave regardless of wall-clock behavior.
	pacing := make([]*rand.Rand, cfg.Clients)
	h := make(swarmHeap, 0, cfg.Clients)
	for i := range rcs {
		pacing[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*15485863))
		h = append(h, swarmEvent{at: 1 + pacing[i].Int63n(97), id: i})
	}
	heap.Init(&h)
	driveStart := time.Now()
	for h.Len() > 0 {
		ev := heap.Pop(&h).(swarmEvent)
		if err := rcs[ev.id].RunRounds(1, cfg.CommEvery); err != nil {
			return nil, fmt.Errorf("fednet: swarm client %d round %d: %w", ev.id, ev.rounds, err)
		}
		ev.rounds++
		if ev.rounds < cfg.Rounds {
			ev.at += 1 + pacing[ev.id].Int63n(97)
			heap.Push(&h, ev)
		}
	}

	res := &SwarmResult{Elapsed: time.Since(driveStart)}
	_, res.Flushed = srv.Flush()
	for _, rc := range rcs {
		if _, err := rc.Fetch(); err != nil {
			return nil, fmt.Errorf("fednet: swarm final fetch %d: %w", rc.ID(), err)
		}
		res.Retries += rc.Stats().Retries
	}
	res.Global = srv.Global()
	res.Reports = srv.Reports()
	res.Rounds = srv.Rounds()
	res.Comm = srv.Comm()
	for _, rep := range res.Reports {
		res.StaleDrops += rep.StaleDrops
		res.DupDrops += rep.DupDrops
	}
	for _, f := range faulties {
		s := f.Stats()
		res.Faults.Drops += s.Drops
		res.Faults.Delays += s.Delays
		res.Faults.Duplicates += s.Duplicates
		res.Faults.Corruptions += s.Corruptions
	}
	if curve := fed.MeanRewardCurve(clients); len(curve) > 0 {
		res.MeanReward = curve[len(curve)-1]
	}
	return res, nil
}
