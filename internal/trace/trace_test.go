package trace

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("a", 1.23456789)
	tbl.AddRow("longer-name", 2)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not rounded to 4 sig digits: %q", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("missing separator")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s1 := NewSeries("alpha", []float64{1, 2})
	s2 := Series{Name: "be,ta", X: []float64{0}, Y: []float64{9}}
	if err := WriteCSV(&b, s1, s2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "alpha,0,1\nalpha,1,2\n") {
		t.Fatalf("series rows: %q", out)
	}
	if !strings.Contains(out, `"be,ta",0,9`) {
		t.Fatalf("escaping: %q", out)
	}
}

func TestWriteCSVLengthMismatch(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, Series{Name: "x", X: []float64{1}, Y: nil})
	if err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestHeatmap(t *testing.T) {
	var b strings.Builder
	err := Heatmap(&b, []string{"C1", "C2"}, [][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "C1") || !strings.Contains(out, "0.9") {
		t.Fatalf("heatmap output: %q", out)
	}
}

func TestNewSeriesImplicitX(t *testing.T) {
	s := NewSeries("s", []float64{5, 6, 7})
	if s.X[2] != 2 {
		t.Fatal("implicit x wrong")
	}
}
