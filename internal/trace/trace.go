// Package trace renders experiment output: aligned text tables for the
// harness stdout and CSV series for plotting. It is intentionally tiny and
// dependency-free.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v, floats with 4
// significant digits.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 4, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(x), 'g', 4, 64)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		n, err := io.WriteString(w, b.String())
		total += int64(n)
		return err
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return total, err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never errors; keep vet happy.
		panic(err)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, e.g. one convergence curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries builds a series from y values with implicit x = 0,1,2,…
func NewSeries(name string, y []float64) Series {
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	return Series{Name: name, X: x, Y: y}
}

// WriteCSV writes one or more series in long form:
// series,x,y — one row per point.
func WriteCSV(w io.Writer, series ...Series) error {
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("trace: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Heatmap prints a labelled matrix (the Figures 11–13 weight heatmaps).
func Heatmap(w io.Writer, labels []string, m [][]float64) error {
	t := NewTable(append([]string{""}, labels...)...)
	for i, row := range m {
		cells := make([]interface{}, 0, len(row)+1)
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		cells = append(cells, label)
		for _, v := range row {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}
