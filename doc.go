// Package repro is a from-scratch Go reproduction of "Heterogeneity-aware
// Task Scheduling based on Personalized Federated Reinforcement Learning"
// (PFRL-DM, ICPP 2025).
//
// The root package is a thin facade over the internal packages; it exposes
// the high-level entry points a downstream user needs:
//
//   - Train a scheduler federation with any of the compared algorithms
//     (PFRL-DM, MFPO, FedAvg, independent PPO) via TrainFederation.
//   - Build standalone scheduling environments and agents for custom
//     experiments via NewEnvironment and NewAgent.
//   - Regenerate every figure and table of the paper via the runners in
//     internal/core, the benches in bench_test.go, and the CLI tools in
//     cmd/.
//
// Architecture (bottom-up):
//
//	internal/tensor    dense float64 matrices, goroutine-tiled matmul
//	internal/autograd  tape-based reverse-mode autodiff
//	internal/nn        MLPs, Adam/SGD, categorical policies, flat params
//	internal/attn      multi-head attention / KL / cosine weight generators
//	internal/workload  the ten modelled cluster trace distributions
//	internal/cloudsim  the discrete-time cloud scheduling MDP (§4.1-4.2)
//	internal/rl        PPO and dual-critic PPO (§4.3)
//	internal/fedcore   transport-agnostic federated round engine
//	internal/fed       clients, in-process rounds, aggregators (§4.4-4.5)
//	internal/core      experiment orchestration, one runner per figure
//	internal/stats     Wilcoxon signed-rank test and descriptive stats
//	internal/trace     result tables and CSV series
//
// See README.md for a quickstart and DESIGN.md for the full system
// inventory and per-experiment index.
package repro
