package repro

import (
	"testing"

	"repro/internal/workload"
)

func TestFacadeSampleWorkload(t *testing.T) {
	tasks := SampleWorkload(workload.Google, 1, 50)
	if len(tasks) != 50 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	again := SampleWorkload(workload.Google, 1, 50)
	if tasks[0] != again[0] {
		t.Fatal("sampling not seed-deterministic")
	}
}

func TestFacadeEnvironmentAndAgents(t *testing.T) {
	vms := []VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}}
	env, err := NewEnvironment(vms, SampleWorkload(workload.K8S, 2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if env.NumActions() != 3 {
		t.Fatalf("actions %d", env.NumActions())
	}
	ppo := NewPPOAgent(env, 3)
	dual := NewDualCriticAgent(env, 4)
	state := env.Observe(nil)
	if a, _ := ppo.SelectAction(state); a < 0 || a >= env.NumActions() {
		t.Fatal("ppo action out of range")
	}
	if a, _ := dual.SelectAction(state); a < 0 || a >= env.NumActions() {
		t.Fatal("dual action out of range")
	}
}

func TestFacadeTrainFederation(t *testing.T) {
	cfg := DefaultExperiment(5)
	cfg.Specs = ScaleSpecs(Table2Specs(), 4)[:2]
	cfg.TasksPerClient = 20
	cfg.Episodes = 2
	cfg.CommEvery = 1
	cfg.EpisodeStepCap = 100
	cfg.Parallel = false
	res, err := TrainFederation(PFRLDM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanCurve) != 2 || res.Federation == nil {
		t.Fatal("federation result incomplete")
	}
}

func TestFacadeSpecAccessors(t *testing.T) {
	if len(Table2Specs()) != 4 || len(Table3Specs()) != 10 {
		t.Fatal("spec tables wrong")
	}
	scaled := ScaleSpecs(Table3Specs(), 2)
	if scaled[0].VMs[0].CPU != 4 {
		t.Fatalf("scaling wrong: %+v", scaled[0].VMs[0])
	}
}
