// New agent: a fresh cloud provider joins an established PFRL-DM
// federation (§5.3, Figure 20). The joiner is initialized from the
// server's aggregated critic and converges faster than an identical
// provider training a PPO scheduler from scratch.
//
//	go run ./examples/newagent
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// The 10-provider Table-3 federation, as in the paper's Figure 20 (a
	// richer server model makes the warm start pay off sooner).
	cfg := core.DefaultExperiment(1)
	cfg.TasksPerClient = 80
	cfg.Episodes = 30
	cfg.CommEvery = 5
	cfg.EpisodeStepCap = 400

	warmup, join := 30, 30
	fmt.Printf("warming up a %d-client PFRL-DM federation for %d episodes, then joining a new provider for %d...\n\n",
		len(cfg.Specs), warmup, join)
	res, err := core.RunNewAgent(cfg, warmup, join)
	if err != nil {
		log.Fatal(err)
	}

	t := trace.NewTable("episode", "joined (server init)", "fresh PPO (random init)")
	js := stats.MovingAverage(res.Joined, 3)
	fs := stats.MovingAverage(res.Fresh, 3)
	for i := range js {
		t.AddRow(i+1, js[i], fs[i])
	}
	fmt.Print(t.String())

	jTail := stats.Mean(res.Joined[len(res.Joined)/2:])
	fTail := stats.Mean(res.Fresh[len(res.Fresh)/2:])
	fmt.Printf("\nsecond-half mean reward: joined %.1f vs fresh %.1f\n", jTail, fTail)
	if jTail > fTail {
		fmt.Println("the joiner's inherited value function paid off: it converged ahead")
		fmt.Println("of the from-scratch baseline (the paper's Figure-20 shape).")
	} else {
		fmt.Println("at this small scale the warm-started value function has not paid")
		fmt.Println("off yet — the advantage grows with warmup length and episode count")
		fmt.Println("(see `pfrl-bench -exp fig20 -episodes 30` and EXPERIMENTS.md).")
	}
}
