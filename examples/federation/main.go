// Federation: run PFRL-DM end to end on four heterogeneous cloud providers
// (the paper's Table-2 setup, scaled down) and watch the pieces work — the
// convergence curve, each client's adaptive α, and the attention weights
// the server produced in the final round.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/rl"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultExperiment(7)
	cfg.Specs = core.ScaleSpecs(core.Table2Specs(), 4)
	cfg.TasksPerClient = 80
	cfg.Episodes = 24
	cfg.CommEvery = 4
	cfg.EpisodeStepCap = 400
	cfg.K = 2 // K = N/2, as in the paper

	fmt.Printf("training PFRL-DM: %d clients, %d episodes, aggregation every %d episodes, K=%d\n\n",
		len(cfg.Specs), cfg.Episodes, cfg.CommEvery, cfg.K)
	res, err := core.Train(core.AlgPFRLDM, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mean reward across clients (moving average, window 3):")
	smoothed := stats.MovingAverage(res.MeanCurve, 3)
	t := trace.NewTable("episode", "mean reward")
	for i := 0; i < len(smoothed); i += 2 {
		t.AddRow(i+1, smoothed[i])
	}
	fmt.Print(t.String())

	fmt.Println("\nfinal adaptive α per client (weight of the LOCAL critic, Eq. 15):")
	at := trace.NewTable("client", "dataset", "alpha", "local critic loss", "public critic loss")
	for i, c := range res.Clients {
		d := c.Agent.(*rl.DualCriticPPO)
		at.AddRow(c.Name, res.Data[i].Spec.Dataset.String(), d.Alpha, d.LastLocalLoss, d.LastPublicLoss)
	}
	fmt.Print(at.String())

	if attn, ok := res.Federation.Agg.(*fed.Attention); ok && attn.LastWeights != nil {
		fmt.Println("\nattention weights of the final aggregation round (participants only):")
		labels := make([]string, len(attn.LastWeights))
		for i := range labels {
			labels[i] = fmt.Sprintf("P%d", i+1)
		}
		if err := trace.Heatmap(os.Stdout, labels, attn.LastWeights); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nonly the public critic travels:")
	fmt.Printf("  payload per client per round: %d scalars (full model would be ~3x)\n",
		res.Federation.Transport.PayloadSize(res.Clients[0]))
}
