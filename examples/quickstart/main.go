// Quickstart: build a cloud scheduling environment from a modelled
// workload, train a PPO scheduler on it, and compare it against classic
// heuristics (first-fit, best-fit, random).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cloudsim"
	"repro/internal/rl"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A small private cloud: two mid-size VMs and one large one.
	vms := []cloudsim.VMSpec{
		{CPU: 4, Mem: 32},
		{CPU: 4, Mem: 32},
		{CPU: 8, Mem: 64},
	}

	// 80 tasks drawn from the Google-like trace model (§3: tiny, short,
	// bursty tasks), clamped so everything fits the largest VM.
	rng := rand.New(rand.NewSource(1))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, 80), vms)
	train, test := workload.Split(tasks, 0.6)

	cfg := cloudsim.DefaultConfig(vms)
	cfg.MaxSteps = 400
	env, err := cloudsim.NewEnv(cfg, train)
	if err != nil {
		log.Fatal(err)
	}

	// Train a PPO scheduler (paper hyperparameters, slightly higher LR for
	// this tiny example).
	rlCfg := rl.DefaultConfig(env.StateDim(), env.NumActions())
	rlCfg.ActorLR, rlCfg.CriticLR = 1e-3, 1e-3
	agent := rl.NewPPO(rlCfg, rand.New(rand.NewSource(2)))

	fmt.Println("training PPO for 30 episodes...")
	for ep := 0; ep < 30; ep++ {
		env.Reset(train)
		var buf rl.Buffer
		total := rl.CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
		if (ep+1)%10 == 0 {
			fmt.Printf("  episode %2d: total reward %.1f\n", ep+1, total)
		}
	}

	// Evaluate everyone on the held-out tasks. The PPO agent is deployed
	// with the feasibility guard (it never submits a placement the
	// admission check would reject), like any production scheduler.
	fmt.Println("\ngreedy evaluation on held-out tasks:")
	t := trace.NewTable("scheduler", "avg response", "makespan", "utilization", "load balance")
	evalEnv := cloudsim.MustNewEnv(cfg, test)
	rl.EvaluateEpisodeMasked(evalEnv, agent)
	evalEnv.Drain()
	m := evalEnv.Metrics()
	t.AddRow("PPO (trained)", m.AvgResponse, m.Makespan, m.AvgUtil, m.AvgLoadBal)
	for _, p := range []cloudsim.Policy{
		cloudsim.FirstFit{},
		cloudsim.BestFit{},
		cloudsim.WorstFit{},
		cloudsim.RandomFit{Rng: rand.New(rand.NewSource(3))},
	} {
		hm := cloudsim.RunEpisode(cloudsim.MustNewEnv(cfg, test), p)
		t.AddRow(p.Name(), hm.AvgResponse, hm.Makespan, hm.AvgUtil, hm.AvgLoadBal)
	}
	fmt.Print(t.String())
}
