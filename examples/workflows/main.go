// Workflows: scheduling DAG-structured jobs — the paper's stated future
// work (§6). Stages only become schedulable when their dependencies finish;
// the same PPO agent trains on the workflow environment unchanged, and its
// schedule is compared against heuristics on end-to-end workflow latency
// and stretch (latency / critical path).
//
//	go run ./examples/workflows
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cloudsim"
	"repro/internal/rl"
	"repro/internal/trace"
	"repro/internal/workflow"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	vms := []cloudsim.VMSpec{{CPU: 4, Mem: 32}, {CPU: 4, Mem: 32}, {CPU: 8, Mem: 64}}
	cfg := cloudsim.DefaultConfig(vms)
	cfg.MaxSteps = 2000

	gen := workflow.DefaultGenConfig(workload.K8S)
	gen.Shape = workflow.ShapeForkJoin
	rng := rand.New(rand.NewSource(1))
	wfs := workflow.ClampToVMs(workflow.Generate(rng, gen, 12), vms)
	total := 0
	for _, w := range wfs {
		total += w.NumStages()
	}
	fmt.Printf("generated %d fork-join workflows (%d stages total) from the %s model\n\n",
		len(wfs), total, gen.Dataset)

	env, err := workflow.NewEnv(cfg, wfs)
	if err != nil {
		log.Fatal(err)
	}

	// Train PPO on the DAG environment.
	rlCfg := rl.DefaultConfig(env.StateDim(), env.NumActions())
	rlCfg.ActorLR, rlCfg.CriticLR = 1e-3, 1e-3
	agent := rl.NewPPO(rlCfg, rand.New(rand.NewSource(2)))
	fmt.Println("training PPO for 25 episodes on the workflow environment...")
	for ep := 0; ep < 25; ep++ {
		env.Reset(wfs)
		var buf rl.Buffer
		totalReward := rl.CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
		if (ep+1)%5 == 0 {
			fmt.Printf("  episode %2d: total reward %.1f\n", ep+1, totalReward)
		}
	}

	// Compare schedules.
	type result struct {
		name    string
		records []workflow.WorkflowRecord
		metrics cloudsim.Metrics
	}
	var results []result

	run := func(name string, act func(e *workflow.Env) int) {
		e, err := workflow.NewEnv(cfg, wfs)
		if err != nil {
			log.Fatal(err)
		}
		for !e.Done() {
			e.Step(act(e))
		}
		e.Drain()
		results = append(results, result{name, e.WorkflowRecords(), e.Metrics()})
	}

	run("PPO (trained)", func(e *workflow.Env) int {
		return agent.GreedyMaskedAction(e.Observe(nil), e.FeasibleActions())
	})
	ff := cloudsim.FirstFit{}
	run("first-fit", func(e *workflow.Env) int { return ff.SelectAction(e.Inner()) })
	bf := cloudsim.BestFit{}
	run("best-fit", func(e *workflow.Env) int { return bf.SelectAction(e.Inner()) })

	fmt.Println("\nworkflow-level results:")
	t := trace.NewTable("scheduler", "workflows done", "mean latency", "mean stretch", "stage makespan")
	for _, r := range results {
		lat, str := 0.0, 0.0
		for _, rec := range r.records {
			lat += float64(rec.Response())
			str += rec.Stretch()
		}
		n := float64(len(r.records))
		if n == 0 {
			n = 1
		}
		t.AddRow(r.name, len(r.records), lat/n, str/n, r.metrics.Makespan)
	}
	fmt.Print(t.String())
	fmt.Println("\nstretch 1.0 = the workflow ran at its critical-path optimum;")
	fmt.Println("higher means queueing or dependency serialization overhead.")
}
