// Checkpoint: train a scheduler, save it to disk, reload it in a fresh
// process state, and verify the reloaded policy schedules identically —
// the deploy/rollback workflow of a production scheduler.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/cloudsim"
	"repro/internal/rl"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	vms := []cloudsim.VMSpec{{CPU: 4, Mem: 32}, {CPU: 8, Mem: 64}}
	cfg := cloudsim.DefaultConfig(vms)
	cfg.MaxSteps = 300
	rng := rand.New(rand.NewSource(1))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.KVM2019, rng, 50), vms)
	train, test := workload.Split(tasks, 0.6)

	env := cloudsim.MustNewEnv(cfg, train)
	rlCfg := rl.DefaultConfig(env.StateDim(), env.NumActions())
	rlCfg.ActorLR, rlCfg.CriticLR = 1e-3, 1e-3
	agent := rl.NewDualCriticPPO(rlCfg, rand.New(rand.NewSource(2)))

	fmt.Println("training a dual-critic agent for 15 episodes...")
	for ep := 0; ep < 15; ep++ {
		env.Reset(train)
		var buf rl.Buffer
		rl.CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
	}

	dir, err := os.MkdirTemp("", "pfrl-checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "scheduler.json")
	if err := rl.SaveAgentFile(path, agent); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved checkpoint: %s (%d bytes, alpha=%.3f)\n", path, info.Size(), agent.Alpha)

	loaded, err := rl.LoadAgentFile(path, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	reloaded := loaded.(*rl.DualCriticPPO)
	fmt.Printf("reloaded agent: alpha=%.3f\n", reloaded.Alpha)

	evalWith := func(a rl.MaskedAgent) cloudsim.Metrics {
		e := cloudsim.MustNewEnv(cfg, test)
		rl.EvaluateEpisodeMasked(e, a)
		e.Drain()
		return e.Metrics()
	}
	m1 := evalWith(agent)
	m2 := evalWith(reloaded)
	fmt.Printf("\noriginal : response %.2f makespan %d util %.3f\n", m1.AvgResponse, m1.Makespan, m1.AvgUtil)
	fmt.Printf("reloaded : response %.2f makespan %d util %.3f\n", m2.AvgResponse, m2.Makespan, m2.AvgUtil)
	if m1 == m2 {
		fmt.Println("\n✓ reloaded scheduler is behaviourally identical")
	} else {
		fmt.Println("\n✗ schedules diverged — checkpoint round trip is broken")
		os.Exit(1)
	}
}
