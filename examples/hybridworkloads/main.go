// Hybrid workloads: the scenario that motivates the paper — a provider's
// workload mix shifts toward task types it has never seen (a bank suddenly
// running ML jobs, §1). We train all four algorithms on the 10-provider
// federation and evaluate each provider's scheduler on a hybrid test set
// where 80% of tasks come from the other providers' distributions (§5.3,
// Figures 16–19).
//
//	go run ./examples/hybridworkloads
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultExperiment(11)
	cfg.TasksPerClient = 80
	cfg.Episodes = 16
	cfg.CommEvery = 4
	cfg.EpisodeStepCap = 400

	fmt.Printf("training %d algorithms on %d providers (%d episodes each)...\n",
		len(core.AllAlgorithms()), len(cfg.Specs), cfg.Episodes)
	evals := map[core.Algorithm]*core.HybridEval{}
	for _, alg := range core.AllAlgorithms() {
		res, err := core.Train(alg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		evals[alg] = core.EvalHybrid(res, cfg, 0.2)
		fmt.Printf("  %-8s trained; hybrid mean response %.1f slots\n",
			alg, stats.Mean(evals[alg].AvgResponse))
	}

	fmt.Println("\nper-metric means across providers (hybrid test sets, 20% native / 80% foreign):")
	t := trace.NewTable("algorithm", "response", "makespan", "utilization", "load balance")
	for _, alg := range core.AllAlgorithms() {
		e := evals[alg]
		t.AddRow(alg.String(), stats.Mean(e.AvgResponse), stats.Mean(e.Makespan),
			stats.Mean(e.AvgUtil), stats.Mean(e.AvgLoadBal))
	}
	fmt.Print(t.String())

	tbl, err := core.BuildWilcoxonTable(evals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 4 — Wilcoxon signed-rank p-values (PFRL-DM vs ...):")
	wt := trace.NewTable(append([]string{"metric"}, tbl.Algorithms...)...)
	for mi, metric := range tbl.Metrics {
		row := []interface{}{metric}
		for ai := range tbl.Algorithms {
			row = append(row, fmt.Sprintf("%.3g", tbl.P[mi][ai]))
		}
		wt.AddRow(row...)
	}
	fmt.Print(wt.String())
	fmt.Println("\np < 0.05 means PFRL-DM's advantage over that algorithm is statistically significant.")
}
