// Hybrid workloads: the scenario that motivates the paper — a provider's
// workload mix shifts toward task types it has never seen (a bank suddenly
// running ML jobs, §1). We train all four algorithms on the 10-provider
// federation and evaluate each provider's scheduler on a hybrid test set
// where 80% of tasks come from the other providers' distributions (§5.3,
// Figures 16–19).
//
// The embedded twoclient.json shows the declarative side of hybrid
// workloads: a two-tenant spec (latency-critical interactive traffic plus
// best-effort batch) drives one provider's traffic with SLO-aware reward
// shaping, and a first-fit episode prints the per-class wait breakdown
// before training starts.
//
//	go run ./examples/hybridworkloads
package main

import (
	"bytes"
	_ "embed"
	"fmt"
	"log"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

//go:embed twoclient.json
var twoClientJSON []byte

// specDemo compiles the embedded two-tenant spec, streams a first-fit
// episode from it, and prints how each service class fared.
func specDemo(seed int64) *workload.Spec {
	spec, err := workload.ParseSpec(bytes.NewReader(twoClientJSON))
	if err != nil {
		log.Fatal(err)
	}
	comp, err := spec.Compile()
	if err != nil {
		log.Fatal(err)
	}
	vms := []cloudsim.VMSpec{{CPU: 8, Mem: 32}, {CPU: 8, Mem: 32}, {CPU: 16, Mem: 64}}
	cfg := cloudsim.DefaultConfig(vms)
	cfg.Objectives.SLOWaitTarget = [workload.NumSLOClasses]int{0, 8, 4}
	env, err := cloudsim.NewEnvSource(cfg, cloudsim.NewSpecSource(comp, seed, 300, vms))
	if err != nil {
		log.Fatal(err)
	}
	policy := cloudsim.FirstFit{}
	for !env.Done() {
		env.Step(policy.SelectAction(env))
	}
	env.Drain()
	m := env.Metrics()
	fmt.Printf("spec %q: first-fit over %d tasks on %d VMs (avg response %.1f slots)\n",
		comp.Name, m.Completed, len(vms), m.AvgResponse)
	t := trace.NewTable("slo class", "completed", "avg wait", "wait p95", "violations")
	for _, s := range m.PerSLO {
		t.AddRow(s.Class.String(), s.Completed, s.AvgWait, s.WaitP95, s.Violations)
	}
	fmt.Print(t.String())
	fmt.Println()
	return spec
}

func main() {
	log.SetFlags(0)

	spec := specDemo(11)

	cfg := core.DefaultExperiment(11)
	cfg.TasksPerClient = 80
	cfg.Episodes = 16
	cfg.CommEvery = 4
	cfg.EpisodeStepCap = 400
	// Provider 1 swaps its builtin dataset for the declarative two-tenant
	// mix, and every provider's reward is shaped against the SLO classes.
	cfg.Specs[0].Workload = spec
	cfg.SLOWaitCost = [workload.NumSLOClasses]float64{0, 0.002, 0.01}
	cfg.SLOWaitTarget = [workload.NumSLOClasses]int{0, 8, 4}

	fmt.Printf("training %d algorithms on %d providers (%d episodes each)...\n",
		len(core.AllAlgorithms()), len(cfg.Specs), cfg.Episodes)
	evals := map[core.Algorithm]*core.HybridEval{}
	for _, alg := range core.AllAlgorithms() {
		res, err := core.Train(alg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		evals[alg] = core.EvalHybrid(res, cfg, 0.2)
		fmt.Printf("  %-8s trained; hybrid mean response %.1f slots\n",
			alg, stats.Mean(evals[alg].AvgResponse))
	}

	fmt.Println("\nper-metric means across providers (hybrid test sets, 20% native / 80% foreign):")
	t := trace.NewTable("algorithm", "response", "makespan", "utilization", "load balance")
	for _, alg := range core.AllAlgorithms() {
		e := evals[alg]
		t.AddRow(alg.String(), stats.Mean(e.AvgResponse), stats.Mean(e.Makespan),
			stats.Mean(e.AvgUtil), stats.Mean(e.AvgLoadBal))
	}
	fmt.Print(t.String())

	tbl, err := core.BuildWilcoxonTable(evals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 4 — Wilcoxon signed-rank p-values (PFRL-DM vs ...):")
	wt := trace.NewTable(append([]string{"metric"}, tbl.Algorithms...)...)
	for mi, metric := range tbl.Metrics {
		row := []interface{}{metric}
		for ai := range tbl.Algorithms {
			row = append(row, fmt.Sprintf("%.3g", tbl.P[mi][ai]))
		}
		wt.AddRow(row...)
	}
	fmt.Print(wt.String())
	fmt.Println("\np < 0.05 means PFRL-DM's advantage over that algorithm is statistically significant.")
}
