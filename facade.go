package repro

import (
	"math/rand"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/workload"
)

// The facade re-exports the high-level API so downstream users interact
// with one package. Type aliases keep the internal packages as the single
// source of truth.

// Algorithm selects a training scheme.
type Algorithm = core.Algorithm

// The four compared algorithms.
const (
	PPO    = core.AlgPPO
	FedAvg = core.AlgFedAvg
	MFPO   = core.AlgMFPO
	PFRLDM = core.AlgPFRLDM
)

// ExperimentConfig parameterizes a training run.
type ExperimentConfig = core.ExperimentConfig

// ClientSpec defines one client's cluster and workload dataset.
type ClientSpec = core.ClientSpec

// TrainResult is the outcome of TrainFederation.
type TrainResult = core.TrainResult

// Task is one schedulable unit of work.
type Task = workload.Task

// VMSpec describes a virtual machine's capacity.
type VMSpec = cloudsim.VMSpec

// Metrics are the scheduling quality measures of §5.1.
type Metrics = cloudsim.Metrics

// DefaultExperiment returns the scaled-down Table-3 configuration
// (see core.DefaultExperiment for the paper-scale knobs).
func DefaultExperiment(seed int64) ExperimentConfig { return core.DefaultExperiment(seed) }

// Table2Specs returns the paper's 4-client exploratory setup.
func Table2Specs() []ClientSpec { return core.Table2Specs() }

// Table3Specs returns the paper's 10-client main setup.
func Table3Specs() []ClientSpec { return core.Table3Specs() }

// ScaleSpecs divides VM capacities by scale, preserving heterogeneity.
func ScaleSpecs(specs []ClientSpec, scale int) []ClientSpec { return core.ScaleSpecs(specs, scale) }

// TrainFederation trains the given algorithm over the configured clients
// and returns the result (convergence curves, trained clients, federation).
func TrainFederation(alg Algorithm, cfg ExperimentConfig) (*TrainResult, error) {
	return core.Train(alg, cfg)
}

// NewEnvironment builds a standalone scheduling environment for the given
// cluster and task set, using the environment defaults of §4.2.
func NewEnvironment(vms []VMSpec, tasks []Task) (*cloudsim.Env, error) {
	return cloudsim.NewEnv(cloudsim.DefaultConfig(vms), cloudsim.ClampTasks(tasks, vms))
}

// SampleWorkload draws n tasks from one of the ten modelled datasets.
func SampleWorkload(dataset workload.DatasetID, seed int64, n int) []Task {
	return workload.SampleDataset(dataset, rand.New(rand.NewSource(seed)), n)
}

// NewPPOAgent builds an independent PPO agent for an environment.
func NewPPOAgent(env *cloudsim.Env, seed int64) *rl.PPO {
	return rl.NewPPO(rl.DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(seed)))
}

// NewDualCriticAgent builds a PFRL-DM client agent for an environment.
func NewDualCriticAgent(env *cloudsim.Env, seed int64) *rl.DualCriticPPO {
	return rl.NewDualCriticPPO(rl.DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(seed)))
}
